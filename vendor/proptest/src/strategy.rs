//! Value-generation strategies (a compatible subset of
//! `proptest::strategy`).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of an associated type from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves and
    /// `recurse` wraps an inner strategy into one that may nest it.
    /// The `depth` parameter bounds nesting; `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among several strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options; must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + (rng.next_u64() % span) as i64) as i32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Generates booleans uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
