//! Embedding glue for the `spi serve` daemon.
//!
//! The daemon itself lives in the `spi-server` crate (re-exported
//! here); this module adds [`FullEngine`], the execution back-end the
//! `spi` binary plugs in.  It extends [`VerifierEngine`] (verify and
//! campaign jobs) with the third job kind, `conformance-replay`: a
//! served spec is run through the named conformance oracles exactly as
//! `spi conformance` would, and the per-oracle verdicts come back as
//! the response body.

pub use spi_server::{
    campaign_body, coordinate, error_response, ok_response, oneshot, parse_request,
    progress_response, pull_from, push_to, rejected_response, serve, shed_response, verify_body,
    CacheHandle, ChaosEvent, ChaosPlan, Client, CoordinatorHandle, CoordinatorOptions,
    CoordinatorShutdown, Engine, EngineOutcome, JobRequest, Membership, Mode, Priority, Request,
    ResultCache, Ring, RunControl, ServerHandle, ServerOptions, ShutdownHandle, Singleflight,
    TenantQuotas, VerifierEngine,
};
pub use spi_server::gossip::gossip_body;

use std::sync::Mutex;

use spi_conformance::{
    builtin_names, check_process, oracle_by_name, OracleEnv, Verdict as OracleVerdict,
};
use spi_verify::jsonlite::Json;

/// The full engine: verify and campaign via [`VerifierEngine`], plus
/// conformance replay through the oracle suite.
#[derive(Debug, Default)]
pub struct FullEngine {
    verifier: VerifierEngine,
    /// The checkpoint oracle round-trips through a temp file derived
    /// from the case's `(seed, index)`; replayed specs all carry
    /// `(0, 0)`, so concurrent replays must not interleave.
    replay_lock: Mutex<()>,
}

impl FullEngine {
    /// A full engine with the given per-exploration worker count
    /// (`None` = the verifier default).
    #[must_use]
    pub fn new(explore_workers: Option<usize>) -> FullEngine {
        FullEngine {
            verifier: VerifierEngine { explore_workers },
            replay_lock: Mutex::new(()),
        }
    }

    fn replay(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome {
        let process = match spi_server::parse_source(&job.concrete) {
            Ok(p) => p,
            Err(e) => return EngineOutcome::error(e),
        };
        let names: Vec<String> = if job.oracles.is_empty() {
            builtin_names().iter().map(ToString::to_string).collect()
        } else {
            job.oracles.clone()
        };
        let env = OracleEnv {
            max_states: job.budget.max_states.min(4_000),
            ..OracleEnv::default()
        };
        let _guard = self.replay_lock.lock().expect("replay lock");
        let mut verdicts = Vec::new();
        let mut failures = 0usize;
        for name in &names {
            if ctl.tripped() {
                return EngineOutcome::error("replay cancelled while draining");
            }
            let Some(oracle) = oracle_by_name(name) else {
                return EngineOutcome::error(format!(
                    "unknown oracle {name:?} (valid: {})",
                    builtin_names().join(", ")
                ));
            };
            let verdict = check_process(&*oracle, &process, job.faults.clone(), &job.channels, &env);
            let (word, detail) = match &verdict {
                OracleVerdict::Pass => ("pass", String::new()),
                OracleVerdict::Skip(why) => ("skip", why.clone()),
                OracleVerdict::Fail(why) => {
                    failures += 1;
                    ("fail", why.clone())
                }
            };
            let mut fields = vec![
                ("name".to_string(), Json::str(name.clone())),
                ("verdict".to_string(), Json::str(word)),
            ];
            if !detail.is_empty() {
                fields.push(("detail".into(), Json::str(detail)));
            }
            verdicts.push(Json::Obj(fields));
        }
        EngineOutcome {
            cacheable: !ctl.tripped(),
            body: Ok(Json::Obj(vec![
                ("oracles".into(), Json::Arr(verdicts)),
                ("failures".into(), Json::count(failures)),
            ])),
        }
    }
}

impl Engine for FullEngine {
    fn run(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome {
        match job.mode {
            Mode::ConformanceReplay => self.replay(job, ctl),
            Mode::Verify | Mode::Campaign => self.verifier.run(job, ctl),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn ctl() -> RunControl {
        RunControl {
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
            progress: None,
        }
    }

    fn replay_job(spec: &str, oracles: &[&str]) -> JobRequest {
        JobRequest {
            mode: Mode::ConformanceReplay,
            concrete: spec.to_string(),
            abstract_spec: String::new(),
            channels: vec!["c".into()],
            sessions: 1,
            visible: 4,
            budget: spi_verify::Budget::default(),
            faults: None,
            intruder: true,
            faults_depth: 1,
            oracles: oracles.iter().map(ToString::to_string).collect(),
            timeout_secs: None,
            no_cache: false,
            tenant: None,
            deadline_ms: None,
            progress_ms: None,
            unit: None,
            reduce: spi_verify::ReduceOptions::none(),
            engine: spi_verify::Engine::Trace,
        }
    }

    #[test]
    fn replays_a_spec_through_named_oracles() {
        let engine = FullEngine::new(Some(1));
        let outcome = engine.run(
            &replay_job("(^m)c<m>|c(x).observe<x>", &["roundtrip", "cowstate"]),
            &ctl(),
        );
        let body = outcome.body.expect("replay succeeds");
        assert!(outcome.cacheable);
        let oracles = body.get("oracles").and_then(Json::as_arr).unwrap();
        assert_eq!(oracles.len(), 2);
        assert_eq!(
            oracles[0].get("verdict").and_then(Json::as_str),
            Some("pass")
        );
        assert_eq!(body.get("failures").and_then(Json::as_int), Some(0));
    }

    #[test]
    fn unknown_oracles_and_bad_specs_error() {
        let engine = FullEngine::new(Some(1));
        let bad = engine.run(&replay_job("0", &["frobnicate"]), &ctl());
        assert!(bad.body.unwrap_err().contains("unknown oracle"));
        let unparsed = engine.run(&replay_job("(((", &[]), &ctl());
        assert!(unparsed.body.is_err());
    }

    #[test]
    fn verify_jobs_still_go_through_the_verifier_engine() {
        let engine = FullEngine::new(Some(1));
        let mut job = replay_job("(^m)c<m>|c(x).observe<x>", &[]);
        job.mode = Mode::Verify;
        job.abstract_spec.clone_from(&job.concrete);
        let outcome = engine.run(&job, &ctl());
        let body = outcome.body.expect("verify succeeds");
        assert_eq!(
            body.get("verdict").and_then(Json::as_str),
            Some("securely-implements")
        );
    }
}
