//! A tiny deterministic RNG for case generation.
//!
//! SplitMix64: a well-mixed 64-bit generator whose entire state is one
//! word, so a `(seed, case index)` pair fully determines a case and any
//! failure replays from its two numbers alone.  Not cryptographic — it
//! only has to be deterministic and reasonably equidistributed.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded by `seed`, forked by `stream` (callers pass the
    /// case index so every case draws from an independent stream).
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Rng {
        // Decorrelate the two inputs before mixing them into one state.
        Rng(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) has no value to draw");
        // Bias is < 2^-50 for any alphabet size used here.
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// `true` with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct as usize
    }

    /// A uniformly drawn element of `xs` (must be non-empty).
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, stream) replays identically");
        let c: Vec<u64> = {
            let mut r = Rng::new(7, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different streams diverge");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(3, 3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
