//! Measure wall-clock exploration time for the Pm2/Pm3 multi-session
//! instances and print one JSON record per configuration, suitable for
//! appending to `BENCH_explore.json`.
//!
//! Run with `cargo run --release -p spi-bench --bin explore_trajectory -- <engine-label>`.
//! The label tags the engine variant being measured (e.g. `seed-sequential`,
//! `hashed-seq`, `parallel`); the harness itself always goes through the
//! public `Verifier` API so successive engine generations are measured the
//! same way.

use std::time::Instant;

use spi_auth::Verifier;
use spi_protocols::multi;
use spi_syntax::Process;

const RUNS: usize = 7;

fn median_ms(verifier: &Verifier, protocol: &Process) -> (f64, usize, usize) {
    // Warm-up run (also gives us the state/transition counts).
    let lts = verifier.explore(protocol).expect("explores");
    let (states, transitions) = (lts.stats.states, lts.stats.edges);
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(verifier.explore(protocol).expect("explores"));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (samples[samples.len() / 2], states, transitions)
}

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unlabelled".to_string());
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    let instances: [(&str, &Process, u32); 3] = [
        ("pm2_naive", &pm2, 2),
        ("pm2_naive", &pm2, 3),
        ("pm3_nonce", &pm3, 2),
    ];
    for (name, protocol, sessions) in instances {
        let verifier = configure(Verifier::new(["c"]).sessions(sessions), workers);
        let (ms, states, transitions) = median_ms(&verifier, protocol);
        println!(
            "{{\"engine\": \"{label}\", \"instance\": \"{name}\", \"sessions\": {sessions}, \
             \"median_ms\": {ms:.2}, \"states\": {states}, \"transitions\": {transitions}, \
             \"runs\": {RUNS}}}"
        );
    }
}

fn configure(verifier: Verifier, workers: usize) -> Verifier {
    // workers == 0 means "leave the verifier at its default" (available
    // parallelism); any other value pins the exploration thread count.
    if workers == 0 {
        verifier
    } else {
        verifier.workers(workers)
    }
}
