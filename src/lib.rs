//! Root facade of the `spi-auth` reproduction workspace.
//!
//! This crate re-exports every member crate so the integration tests and
//! examples at the repository root can reach the whole API through a single
//! dependency. Library users should depend on the individual crates (or on
//! [`spi_auth`], the main facade) instead.

pub use spi_addr as addr;
pub use spi_auth as auth;
pub use spi_protocols as protocols;
pub use spi_semantics as semantics;
pub use spi_syntax as syntax;
pub use spi_verify as verify;
