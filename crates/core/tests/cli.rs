//! End-to-end tests of the `spi` binary.

use std::io::Write as _;
use std::process::Command;

fn spi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spi"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spi-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const P2: &str = "(^kAB)((^m) c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)\n";
const P1: &str = "(^m) c<m> | c(z).observe<z>\n";
const P_ABS: &str = "(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)\n";
const PM2: &str = "(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)\n";
const PM3: &str =
    "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | !(^nb)c<nb>.c(x).case x of {z, w}kAB in [w = nb]observe<z>)\n";
const PM_ABS: &str = "(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)\n";

#[test]
fn parse_round_trips_and_reports_free_names() {
    let file = write_temp("p2.spi", P2);
    let out = spi().arg("parse").arg(&file).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("case z of"));
    assert!(stdout.contains("free names: c, observe"));
}

#[test]
fn parse_renders_diagnostics_on_bad_input() {
    let file = write_temp("bad.spi", "c<m\n");
    let out = spi().arg("parse").arg(&file).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expected"), "{stderr}");
    assert!(stderr.contains('^'), "a caret diagnostic: {stderr}");
}

#[test]
fn run_narrates_and_lists_barbs() {
    let file = write_temp("run.spi", P2);
    let out = spi().arg("run").arg(&file).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Message 1"));
    assert!(stdout.contains("barbs: observe!"));
}

#[test]
fn verify_distinguishes_good_from_bad() {
    let concrete = write_temp("v_p2.spi", P2);
    let abstract_ = write_temp("v_p.spi", P_ABS);
    let bad = write_temp("v_p1.spi", P1);

    let out = spi()
        .args(["verify"])
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--sessions", "1"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "P2 verifies");
    assert!(String::from_utf8_lossy(&out.stdout).contains("securely implements"));

    let out = spi()
        .args(["verify"])
        .arg(&bad)
        .arg(&abstract_)
        .args(["--sessions", "1"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "an attack exits 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ATTACK"));
    assert!(stdout.contains("E pretending to be A"), "{stdout}");
}

#[test]
fn explore_writes_dot_files() {
    let file = write_temp("e.spi", P2);
    let dot = std::env::temp_dir().join("spi-cli-tests").join("e.dot");
    let out = spi()
        .arg("explore")
        .arg(&file)
        .arg("--dot")
        .arg(&dot)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let contents = std::fs::read_to_string(&dot).expect("dot written");
    assert!(contents.starts_with("digraph lts {"));
}

#[test]
fn program_files_are_accepted_everywhere() {
    let prog = write_temp(
        "prog.spi",
        "def A = (^m) c<{m}kAB>\n\
         def B = c(z).case z of {w}kAB in observe<w>\n\
         system (^kAB)($A | $B)\n",
    );
    let out = spi().arg("run").arg(&prog).output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("barbs: observe!"));
}

#[test]
fn narrate_compiles_and_verifies() {
    let nar = write_temp(
        "cr.nar",
        "protocol cr\nroles A, B\nshare A B : kab\nfresh A : m\nfresh B : nb\n\
         1. B -> A : nb\n2. A -> B : {m, nb}kab\nclaim B authenticates m from A\n",
    );
    let out = spi()
        .arg("narrate")
        .arg(&nar)
        .args(["--sessions", "2"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("securely implements"));
}

#[test]
fn campaign_finds_and_shrinks_the_replay() {
    let concrete = write_temp("camp_pm2.spi", PM2);
    let abstract_ = write_temp("camp_pm.spi", PM_ABS);
    let out = spi()
        .arg("campaign")
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--faults-depth", "2", "--intruder", "off"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "attacks exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("14 schedules"), "{stdout}");
    assert!(
        stdout.contains("minimal replay:c:1@1 after 1 shrink steps"),
        "padded schedules shrink to the bare replay: {stdout}"
    );
    assert!(stdout.contains("minimal counterexample"), "{stdout}");
    assert!(stdout.contains("distinguishing trace"), "{stdout}");
    assert!(stdout.contains("0 inconclusive"), "{stdout}");
}

#[test]
fn campaign_passes_surviving_protocols() {
    let concrete = write_temp("camp_pm3.spi", PM3);
    let abstract_ = write_temp("camp_pm_b.spi", PM_ABS);
    let out = spi()
        .arg("campaign")
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--faults-depth", "1", "--intruder", "off"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 survive"), "{stdout}");
}

#[test]
fn campaign_checkpoints_resume_to_the_same_summary() {
    let concrete = write_temp("camp_r_pm2.spi", PM2);
    let abstract_ = write_temp("camp_r_pm.spi", PM_ABS);
    let ckpt = std::env::temp_dir()
        .join("spi-cli-tests")
        .join("campaign-resume.json");
    let _ = std::fs::remove_file(&ckpt);
    let base = || {
        let mut cmd = spi();
        cmd.arg("campaign")
            .arg(&concrete)
            .arg(&abstract_)
            .args(["--faults-depth", "2", "--intruder", "off"]);
        cmd
    };

    let partial = base()
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stop-after", "5"])
        .output()
        .expect("runs");
    let partial_out = String::from_utf8_lossy(&partial.stdout);
    assert!(partial_out.contains("INTERRUPTED"), "{partial_out}");
    assert!(ckpt.exists(), "checkpoint written");

    let resumed = base()
        .args(["--resume", ckpt.to_str().unwrap()])
        .output()
        .expect("runs");
    let resumed_out = String::from_utf8_lossy(&resumed.stdout);
    assert!(resumed_out.contains("(5 resumed, 9 fresh)"), "{resumed_out}");

    let full = base().output().expect("runs");
    let full_out = String::from_utf8_lossy(&full.stdout);
    assert_eq!(resumed.status.code(), full.status.code());
    // Identical per-schedule tables and summaries (the header line
    // differs only in its resumed/fresh counts).
    let table = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("resumed"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(table(&resumed_out), table(&full_out));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn fault_flag_accepts_comma_separated_schedules() {
    let concrete = write_temp("multi_fault_pm2.spi", PM2);
    let abstract_ = write_temp("multi_fault_pm.spi", PM_ABS);
    // One --fault flag carrying a whole two-clause schedule.
    let out = spi()
        .arg("verify")
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--intruder", "off", "--fault", "drop:c:1,duplicate:c:1"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "the duplicate half still bites");
    assert!(String::from_utf8_lossy(&out.stdout).contains("ATTACK"));
    // Malformed clauses inside the list are still rejected, and the error
    // names the offending clause and lists valid kinds and channels.
    let out = spi()
        .arg("verify")
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--fault", "drop:c,mangle:c"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clause 2 of 2"), "{err}");
    assert!(err.contains("`mangle:c`"), "{err}");
    assert!(err.contains("unknown fault kind `mangle`"), "{err}");
    assert!(
        err.contains("drop, duplicate, reorder, replay"),
        "{err} should list the valid kinds"
    );
    assert!(err.contains("channels in C: c"), "{err}");
    // A well-formed clause on a channel outside C is caught with a hint.
    let out = spi()
        .arg("verify")
        .arg(&concrete)
        .arg(&abstract_)
        .args(["--fault", "drop:d"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("channel `d` is not in C"), "{err}");
    assert!(err.contains("add --chan d"), "{err}");
}

#[test]
fn usage_errors_exit_2() {
    let out = spi().arg("frobnicate").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = spi().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}
