//! The secure-implementation checker (Definition 4 of the paper).
//!
//! [`Verifier`] is the top-level entry point of the toolkit: it closes a
//! protocol under the most-general attacker, explores both systems, and
//! decides may-testing as weak trace inclusion.  It lives in this crate
//! (rather than the `spi-auth` facade) so that every embedding — the
//! facade, the CLI, the `spi serve` daemon, and the conformance
//! harness — shares one implementation; `spi-auth` re-exports it
//! unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::time::Instant;

use spi_addr::Path;
use spi_semantics::{FaultSpec, RoleMap, StepInfo};
use spi_syntax::{Name, Process};

use crate::{
    bisim_preorder_sound, find_realization, trace_preorder_sound, Budget, CampaignOptions,
    CampaignReport, CoverageStats, Engine, ExploreOptions, ExploreStats, Explorer, IntruderSpec,
    Lts, MinimalCounterexample, ReduceOptions, ResourceKind, StepDesc, TraceVerdict, VerifyError,
};

/// Which inclusion failed in an equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivDirection {
    /// The left system has a behaviour the right one lacks.
    LeftNotInRight,
    /// The right system has a behaviour the left one lacks.
    RightNotInLeft,
}

/// An attack found by the verifier: a behaviour of the concrete protocol
/// under some attacker that the abstract protocol can never show.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attack {
    /// The distinguishing canonical trace (what a tester observes).
    pub trace: Vec<String>,
    /// The run realizing it, rendered in the paper's message-sequence
    /// notation.
    pub narration: Vec<String>,
}

/// The verifier's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within the configured bounds, every attacked behaviour of the
    /// concrete protocol is an attacked behaviour of the abstract one.
    SecurelyImplements,
    /// A distinguishing behaviour exists: the implementation is insecure.
    Attack(Attack),
    /// The resource [`Budget`] ran out before the check could be decided
    /// either way.  This is a graceful answer, not an error: the partial
    /// explorations were still compared, and had a sound positive or
    /// negative claim been available on the explored prefixes it would
    /// have been returned instead.
    Inconclusive {
        /// The resource whose exhaustion blocked the decision.
        exhausted: ResourceKind,
        /// What the blocking (truncated) exploration covered.
        coverage: CoverageStats,
    },
}

impl Verdict {
    /// Returns `true` when the check was decided either way.
    #[must_use]
    pub fn decided(&self) -> bool {
        !matches!(self, Verdict::Inconclusive { .. })
    }
}

/// The full result of a check, including the exploration sizes so bounded
/// claims are auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Exploration statistics of the concrete system under attack.
    pub concrete_stats: ExploreStats,
    /// Exploration statistics of the abstract system under attack.
    pub abstract_stats: ExploreStats,
    /// Coverage of the concrete exploration.
    pub concrete_coverage: CoverageStats,
    /// Coverage of the abstract exploration.
    pub abstract_coverage: CoverageStats,
    /// How many concrete traces (trace engine) or canonical experiments
    /// (bisimulation engine) were checked for inclusion.
    pub traces_checked: usize,
    /// Which state-space reductions the explorations ran under (both
    /// sides use the same mode; reductions preserve the verdict).
    pub reduce: ReduceOptions,
    /// Which decision procedure(s) produced the verdict.  Under
    /// [`Engine::Both`] the procedures were cross-checked and agreed
    /// (disagreement is a loud [`VerifyError::EngineDisagreement`], not
    /// a report).
    pub engine: Engine,
}

/// Checks that a concrete protocol securely implements an abstract one.
///
/// Following Definition 4, both protocols are closed under the most
/// general attacker of `E_C`: the verifier builds `(νC)(P | X)` with the
/// intruder slot `X` as the protocol's right sibling, explores both
/// systems with the bounded most-general intruder, and decides may-testing
/// as weak trace inclusion over origin-annotated observations.
///
/// # Example
///
/// ```
/// use spi_verify::{Verifier, Verdict};
/// use spi_syntax::parse;
///
/// // Section 5.2: naive replication suffers the replay attack...
/// let pm2 = parse("(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)")?;
/// // ...the challenge-response repairs it.
/// let pm3 = parse(
///     "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | \
///      !(^nb)c<nb>.c(x).case x of {z, w}kAB in [w = nb]observe<z>)",
/// )?;
/// let pm = parse("(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)")?;
///
/// let verifier = Verifier::new(["c"]).sessions(2);
/// let report = verifier.check(&pm2, &pm)?;
/// assert!(matches!(report.verdict, Verdict::Attack(_)));
/// let report = verifier.check(&pm3, &pm)?;
/// assert!(matches!(report.verdict, Verdict::SecurelyImplements));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    channels: Vec<Name>,
    unfold_bound: u32,
    budget: Budget,
    max_visible: usize,
    fresh_budget: u32,
    faults: Option<FaultSpec>,
    intruder_enabled: bool,
    roles: Vec<(String, String)>,
    workers: usize,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    progress_states: Option<Arc<AtomicU64>>,
    progress_schedules: Option<Arc<AtomicU64>>,
    verify_keys: bool,
    reduce: ReduceOptions,
    verify_symmetry: bool,
    engine: Engine,
}

impl Verifier {
    /// A verifier for protocols communicating over `channels` (the set
    /// `C` of Definition 4), with defaults: 2 sessions, 6 visible
    /// observations, one intruder-invented name, a 200 000-state budget,
    /// and a reliable network.
    #[must_use]
    pub fn new<I, N>(channels: I) -> Verifier
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        Verifier {
            channels: channels.into_iter().map(Into::into).collect(),
            unfold_bound: 2,
            budget: Budget::unlimited().states(200_000),
            max_visible: 6,
            fresh_budget: 1,
            faults: None,
            intruder_enabled: true,
            roles: vec![("A".into(), "0".into()), ("B".into(), "1".into())],
            workers: ExploreOptions::available_workers(),
            deadline: None,
            cancel: None,
            progress_states: None,
            progress_schedules: None,
            verify_keys: false,
            reduce: ReduceOptions::none(),
            verify_symmetry: false,
            engine: Engine::Trace,
        }
    }

    /// Sets a wall-clock deadline for every exploration (and for any
    /// campaign loop run through this verifier).  Explorations the clock
    /// truncates report [`ResourceKind::WallClock`], so the verdicts
    /// they feed are *inconclusive* — never silently partial.  Leave
    /// unset for fully reproducible runs.
    #[must_use]
    pub fn deadline(mut self, at: Instant) -> Verifier {
        self.deadline = Some(at);
        self
    }

    /// Shares a cooperative cancellation flag with every exploration (and
    /// campaign loop) this verifier runs: setting it stops work at the
    /// next state boundary with the same inconclusive-wall-clock report
    /// as a passed deadline.  Long-lived embeddings (the `spi serve`
    /// drain path) use one flag to wind down all in-flight checks.
    #[must_use]
    pub fn cancel(mut self, flag: Arc<AtomicBool>) -> Verifier {
        self.cancel = Some(flag);
        self
    }

    /// Shares live progress counters with every run this verifier
    /// performs: `states` is bumped once per fully explored state and
    /// `schedules` once per freshly decided campaign schedule (both
    /// with relaxed ordering).  The `spi serve` front end streams them
    /// as heartbeat events so clients can tell "working" from "dead";
    /// the counters never influence verdicts, statistics, or digests.
    #[must_use]
    pub fn progress(mut self, states: Arc<AtomicU64>, schedules: Arc<AtomicU64>) -> Verifier {
        self.progress_states = Some(states);
        self.progress_schedules = Some(schedules);
        self
    }

    /// Sets the number of worker threads per exploration.  `1` runs the
    /// sequential engine; every value yields bit-for-bit identical
    /// verdicts, statistics, and narrations (parallelism only reduces
    /// wall-clock time).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Verifier {
        self.workers = n.max(1);
        self
    }

    /// Disables the most-general intruder, leaving only whatever faulty
    /// network was configured.  Useful to ask how much of an attack is
    /// attributable to the *network* alone — e.g. the replay on `Pm2`
    /// needs nothing but a duplicating channel.
    #[must_use]
    pub fn no_intruder(mut self) -> Verifier {
        self.intruder_enabled = false;
        self
    }

    /// Sets how many instances each replication may spawn.
    #[must_use]
    pub fn sessions(mut self, n: u32) -> Verifier {
        self.unfold_bound = n;
        self
    }

    /// Sets the visible-trace depth of the may-testing check.
    #[must_use]
    pub fn max_visible(mut self, n: usize) -> Verifier {
        self.max_visible = n;
        self
    }

    /// Sets the state budget per exploration (shorthand for adjusting
    /// only that dimension of the [`Budget`]).
    #[must_use]
    pub fn max_states(mut self, n: usize) -> Verifier {
        self.budget.max_states = n;
        self
    }

    /// Replaces the whole resource [`Budget`].  Exhaustion does not fail
    /// the check — it answers [`Verdict::Inconclusive`] with coverage.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Verifier {
        self.budget = budget;
        self
    }

    /// Runs every exploration over the given faulty network.  The fault
    /// model applies to *both* systems of a comparison, so abstract
    /// specifications (whose localized channels refuse the network) keep
    /// their behaviour while concrete protocols face the faults.
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Verifier {
        self.faults = Some(spec);
        self
    }

    /// Sets how many fresh names the intruder may invent.
    #[must_use]
    pub fn fresh_budget(mut self, n: u32) -> Verifier {
        self.fresh_budget = n;
        self
    }

    /// Interns every explored state by its full canonical string
    /// *alongside* the 128-bit hashed key, panicking on any disagreement
    /// (a hash collision or canonicalization bug).  The conformance
    /// harness runs with this on; `spi verify --verify-keys on` exposes
    /// it for field debugging.  Costs memory and time; off by default.
    #[must_use]
    pub fn verify_keys(mut self, on: bool) -> Verifier {
        self.verify_keys = on;
        self
    }

    /// Sets the state-space reductions every exploration runs under (see
    /// [`ReduceOptions`]).  Reductions preserve verdicts: the symmetry
    /// quotient merges only genuinely isomorphic states and trace
    /// extraction undoes the renaming, while the partial-order reduction
    /// prunes only always-commuting invisible interleavings.  Off by
    /// default (the historical state space).
    #[must_use]
    pub fn reduce(mut self, reduce: ReduceOptions) -> Verifier {
        self.reduce = reduce;
        self
    }

    /// Brute-force-checks every quotiented state key for orbit
    /// invariance, panicking when the signature-guided candidate set
    /// fails to collapse a permutation orbit.  Debugging aid in the
    /// spirit of [`Verifier::verify_keys`]; costly, off by default.
    #[must_use]
    pub fn verify_symmetry(mut self, on: bool) -> Verifier {
        self.verify_symmetry = on;
        self
    }

    /// Selects the decision procedure(s): the trace engine (default),
    /// the on-the-fly hedged-bisimulation engine, or both.  The engines
    /// decide the same relation by independent algorithms; under
    /// [`Engine::Both`] every verdict is cross-checked and any
    /// disagreement fails the run loudly with
    /// [`VerifyError::EngineDisagreement`].
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Verifier {
        self.engine = engine;
        self
    }

    /// Replaces the role map used for narration: pairs of role name and
    /// position (bit path) *within* the protocol.  The default is the
    /// two-party layout `A ↦ ‖0`, `B ↦ ‖1` of the paper's protocols
    /// (restrictions do not contribute tree nodes, so in `(νs)(A | B)`
    /// the parties sit directly under the parallel).
    #[must_use]
    pub fn roles<I, S, T>(mut self, roles: I) -> Verifier
    where
        I: IntoIterator<Item = (S, T)>,
        S: Into<String>,
        T: Into<String>,
    {
        self.roles = roles
            .into_iter()
            .map(|(n, p)| (n.into(), p.into()))
            .collect();
        self
    }

    /// The system under attack: `(νC)(P | X)` with the intruder slot as
    /// the right sibling of the protocol.
    #[must_use]
    pub fn under_attack(&self, protocol: &Process) -> Process {
        Process::restrict_all(
            self.channels.iter().cloned(),
            Process::par(protocol.clone(), Process::Nil),
        )
    }

    fn intruder_spec(&self) -> IntruderSpec {
        let mut spec = IntruderSpec::new(
            "1".parse::<Path>().expect("static path"),
            self.channels.iter().cloned(),
        );
        spec.fresh_budget = self.fresh_budget;
        spec
    }

    fn explore_opts(&self) -> ExploreOptions {
        ExploreOptions {
            budget: self.budget,
            unfold_bound: self.unfold_bound,
            intruder: self.intruder_enabled.then(|| self.intruder_spec()),
            faults: self.faults.clone(),
            workers: self.workers,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            progress: self.progress_states.clone(),
            verify_keys: self.verify_keys,
            reduce: self.reduce,
            verify_symmetry: self.verify_symmetry,
            ..ExploreOptions::default()
        }
    }

    /// Explores a protocol under the most-general intruder.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures (open process, state budget).
    pub fn explore(&self, protocol: &Process) -> Result<Lts, VerifyError> {
        Explorer::new(self.explore_opts()).explore(&self.under_attack(protocol))
    }

    /// Checks Definition 4: does `concrete` securely implement
    /// `abstract_spec`?
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn check(
        &self,
        concrete: &Process,
        abstract_spec: &Process,
    ) -> Result<VerificationReport, VerifyError> {
        let concrete_lts = self.explore(concrete)?;
        let abstract_lts = self.explore(abstract_spec)?;
        let (verdict, traces_checked) =
            match self.decide(&concrete_lts, &abstract_lts)? {
                TraceVerdict::Holds { checked } => (Verdict::SecurelyImplements, checked),
                TraceVerdict::Fails { witness } => {
                    let narration = self.narrate_witness(&concrete_lts, &witness);
                    (
                        Verdict::Attack(Attack {
                            trace: witness,
                            narration,
                        }),
                        0,
                    )
                }
                TraceVerdict::Inconclusive { exhausted } => {
                    // Report the coverage of the side that blocked the
                    // decision (the truncated one).
                    let coverage = if !concrete_lts.complete() {
                        concrete_lts.coverage
                    } else {
                        abstract_lts.coverage
                    };
                    (
                        Verdict::Inconclusive {
                            exhausted,
                            coverage,
                        },
                        0,
                    )
                }
            };
        Ok(VerificationReport {
            verdict,
            concrete_stats: concrete_lts.stats,
            abstract_stats: abstract_lts.stats,
            concrete_coverage: concrete_lts.coverage,
            abstract_coverage: abstract_lts.coverage,
            traces_checked,
            reduce: self.reduce,
            engine: self.engine,
        })
    }

    /// Runs the configured decision procedure(s) on a pair of explored
    /// systems.  Under [`Engine::Both`] the verdicts are cross-checked:
    /// agreement returns the trace engine's answer (its witness
    /// tie-break prefers origin-rich counterexamples), disagreement is
    /// the loud [`VerifyError::EngineDisagreement`].
    fn decide(
        &self,
        concrete_lts: &Lts,
        abstract_lts: &Lts,
    ) -> Result<TraceVerdict, VerifyError> {
        let trace =
            || trace_preorder_sound(concrete_lts, abstract_lts, self.max_visible);
        let bisim =
            || bisim_preorder_sound(concrete_lts, abstract_lts, self.max_visible);
        match self.engine {
            Engine::Trace => Ok(trace()),
            Engine::Bisim => Ok(bisim()),
            Engine::Both => {
                let t = trace();
                let b = bisim();
                if std::mem::discriminant(&t) != std::mem::discriminant(&b) {
                    let witness = [&t, &b]
                        .into_iter()
                        .find_map(|v| match v {
                            TraceVerdict::Fails { witness } => Some(witness.clone()),
                            _ => None,
                        })
                        .unwrap_or_default();
                    return Err(VerifyError::EngineDisagreement {
                        trace: verdict_summary(&t),
                        bisim: verdict_summary(&b),
                        witness,
                    });
                }
                Ok(t)
            }
        }
    }

    /// Checks **testing equivalence**: the may-testing preorder in both
    /// directions under the most-general intruder.  This is the notion
    /// the paper's title methodology rests on — "two processes have the
    /// same behaviour if no distinction can be detected by an external
    /// process interacting with each of them".
    ///
    /// Returns `Ok(None)` when the systems are equivalent, and the
    /// distinguishing [`Attack`] (labelled by direction) otherwise.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn check_equivalence(
        &self,
        left: &Process,
        right: &Process,
    ) -> Result<Option<(EquivDirection, Attack)>, VerifyError> {
        if let Verdict::Attack(a) = self.check(left, right)?.verdict {
            return Ok(Some((EquivDirection::LeftNotInRight, a)));
        }
        if let Verdict::Attack(a) = self.check(right, left)?.verdict {
            return Ok(Some((EquivDirection::RightNotInLeft, a)));
        }
        Ok(None)
    }

    /// Cross-validates a verdict by running **Definition 3 directly**:
    /// synthesizes the paper's tester families (origin tests and replay
    /// tests) from the concrete system's observations and compares
    /// pass-sets of `(νC)(P | X) | T` between the two protocols.
    ///
    /// Slower than [`Verifier::check`] (one exploration per tester) but
    /// conceptually primitive: each violation is literally a test `(T, β)`
    /// the implementation passes and the specification does not.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn check_definition3(
        &self,
        concrete: &Process,
        abstract_spec: &Process,
    ) -> Result<crate::Definition3Outcome, VerifyError> {
        let concrete_lts = self.explore(concrete)?;
        let testers = crate::synthesize_testers(&concrete_lts);
        // Under `system | T` the intruder slot shifts from ‖1 to ‖0‖1,
        // and so does the faulty network's seat.
        let mut spec = self.intruder_spec();
        spec.position = "01".parse().expect("static path");
        let opts = ExploreOptions {
            budget: self.budget,
            unfold_bound: self.unfold_bound,
            intruder: self.intruder_enabled.then_some(spec),
            faults: self
                .faults
                .clone()
                .map(|f| f.at("01".parse().expect("static path"))),
            workers: self.workers,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            progress: self.progress_states.clone(),
            reduce: self.reduce,
            verify_symmetry: self.verify_symmetry,
            ..ExploreOptions::default()
        };
        crate::definition3_preorder(
            &self.under_attack(concrete),
            &self.under_attack(abstract_spec),
            &testers,
            &opts,
        )
    }

    /// Checks Dolev–Yao secrecy: under the most-general intruder, can a
    /// restricted name with one of the given base spellings ever be
    /// derived?  (The paper's Section 5.1 remark: localized outputs give
    /// secrecy; so does encryption.)
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn check_secrecy(
        &self,
        protocol: &Process,
        secrets: &[Name],
    ) -> Result<crate::SecrecyReport, VerifyError> {
        let lts = self.explore(protocol)?;
        Ok(crate::check_secrecy(&lts, secrets))
    }

    /// Campaign options matching this verifier's configuration: the
    /// verifier's channels as the fault universe, all fault kinds, up to
    /// `depth` unit firings per schedule, and the verifier's exploration
    /// bounds for every run.  Adjust checkpointing / interruption knobs
    /// on the returned value before passing it to
    /// [`Verifier::run_campaign`].
    #[must_use]
    pub fn campaign_options(&self, depth: usize) -> CampaignOptions {
        let mut opts = CampaignOptions::new(self.channels.iter().cloned(), depth);
        // The campaign installs each schedule itself; a baseline fault
        // model would leak into every schedule and the identity digest.
        opts.explore = ExploreOptions {
            faults: None,
            ..self.explore_opts()
        };
        opts.max_visible = self.max_visible;
        opts.engine = self.engine;
        opts.progress = self.progress_schedules.clone();
        opts
    }

    /// Runs a fault campaign (see [`crate::campaign`]): every
    /// multi-fault schedule up to the configured depth is checked as in
    /// [`Verifier::check`], failing schedules are shrunk to 1-minimal
    /// counterexamples, and undecidable ones stay inconclusive.
    ///
    /// # Errors
    ///
    /// Propagates machine failures and checkpoint problems; per-schedule
    /// trouble (budget exhaustion, worker panics) is reported in the
    /// per-schedule outcomes instead.
    pub fn run_campaign(
        &self,
        concrete: &Process,
        abstract_spec: &Process,
        opts: &CampaignOptions,
    ) -> Result<CampaignReport, VerifyError> {
        crate::run_campaign(
            &self.under_attack(concrete),
            &self.under_attack(abstract_spec),
            opts,
        )
    }

    /// Narrates a campaign counterexample in the paper's notation: the
    /// concrete protocol is re-explored under the minimal schedule and
    /// the run realizing the minimal trace is rendered.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn narrate_counterexample(
        &self,
        concrete: &Process,
        cex: &MinimalCounterexample,
    ) -> Result<Vec<String>, VerifyError> {
        let opts = ExploreOptions {
            faults: (!cex.schedule.clauses.is_empty()).then(|| cex.schedule.clone()),
            ..self.explore_opts()
        };
        let lts = Explorer::new(opts).explore(&self.under_attack(concrete))?;
        Ok(self.narrate_witness(&lts, &cex.trace))
    }

    /// Convenience: the attack found by [`Verifier::check`], if any.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures.
    pub fn find_attack(
        &self,
        concrete: &Process,
        abstract_spec: &Process,
    ) -> Result<Option<Attack>, VerifyError> {
        Ok(match self.check(concrete, abstract_spec)?.verdict {
            Verdict::Attack(a) => Some(a),
            // Inconclusive means no *sound* attack was found; callers who
            // must distinguish use [`Verifier::check`].
            Verdict::SecurelyImplements | Verdict::Inconclusive { .. } => None,
        })
    }

    fn role_map(&self) -> RoleMap {
        let mut roles = RoleMap::new();
        for (name, bits) in &self.roles {
            // Positions are within the protocol, which sits at ‖0 of
            // (νC)(P | X).
            let path: Path = format!("0{bits}")
                .parse()
                .expect("role paths are bit strings");
            roles.role(name.clone(), path);
        }
        roles
    }

    /// Renders the run realizing `witness` in the paper's notation.
    fn narrate_witness(&self, lts: &Lts, witness: &[String]) -> Vec<String> {
        let Some(path) = find_realization(lts, witness) else {
            return vec!["(no realization found)".into()];
        };
        let roles = self.role_map();
        let mut counter = 0usize;
        let mut lines = Vec::new();
        for (_, label, tgt) in path {
            let names = lts.states[tgt].config.names();
            let who = |p: &Path| roles.role_of(p).unwrap_or_else(|| p.to_bits());
            match label.desc() {
                StepDesc::Internal(StepInfo::Comm(ci)) => {
                    counter += 1;
                    lines.push(format!(
                        "Message {counter}   {} → {} : {}",
                        who(&ci.sender),
                        who(&ci.receiver),
                        ci.payload.display(names)
                    ));
                }
                StepDesc::Internal(StepInfo::Unfold { path }) => {
                    lines.push(format!(
                        "            {} spawns a new session instance",
                        who(path)
                    ));
                }
                StepDesc::Intercept { from, payload, .. } => {
                    counter += 1;
                    lines.push(format!(
                        "Message {counter}   {} → E : {}    E intercepts",
                        who(from),
                        payload.display(names)
                    ));
                }
                StepDesc::Inject { to, payload, .. } => {
                    counter += 1;
                    let target = who(to);
                    let pretending = self
                        .roles
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .find(|n| !target.starts_with(*n))
                        .unwrap_or("A");
                    lines.push(format!(
                        "Message {counter}   E({pretending}) → {target} : {}    E pretending to be {pretending}",
                        payload.display(names)
                    ));
                }
                StepDesc::Observe {
                    from,
                    chan,
                    payload,
                } => {
                    lines.push(format!(
                        "            {} reveals {} on {}",
                        who(from),
                        payload.display(names),
                        chan
                    ));
                }
                StepDesc::Fault {
                    kind,
                    chan,
                    payload,
                } => {
                    counter += 1;
                    lines.push(format!(
                        "Message {counter}   network {kind}s {} on {}",
                        payload.display(names),
                        chan
                    ));
                }
            }
        }
        lines
    }
}

/// A one-line rendering of a [`TraceVerdict`] for disagreement reports.
pub(crate) fn verdict_summary(v: &TraceVerdict) -> String {
    match v {
        TraceVerdict::Holds { .. } => "holds".into(),
        TraceVerdict::Fails { witness } => format!("fails ({} events)", witness.len()),
        TraceVerdict::Inconclusive { exhausted } => format!("inconclusive ({exhausted:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    // The paper's Section 5 protocols, spelled as source text (the
    // `spi-protocols` builders produce behaviourally identical terms, but
    // this crate cannot depend on them without a cycle).
    const P1: &str = "(^m) c<m> | c(z).observe<z>";
    const P2: &str = "(^kAB)((^m) c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)";
    const P_ABS: &str = "(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)";
    const PM2: &str = "(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)";
    const PM_ABS: &str = "(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)";

    fn p(src: &str) -> Process {
        parse(src).expect("test protocol parses")
    }

    #[test]
    fn under_attack_places_the_intruder_slot() {
        let v = Verifier::new(["c"]);
        let sys = v.under_attack(&p(P1));
        // (νc)((A | B) | 0)
        match &sys {
            Process::Restrict(c, body) => {
                assert_eq!(c.as_str(), "c");
                match body.as_ref() {
                    Process::Par(_, slot) => assert!(slot.is_nil()),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_key_single_session_holds() {
        let v = Verifier::new(["c"]).sessions(1);
        let report = v.check(&p(P2), &p(P_ABS)).unwrap();
        assert!(
            matches!(report.verdict, Verdict::SecurelyImplements),
            "{report:?}"
        );
        assert!(report.traces_checked > 0);
    }

    #[test]
    fn equivalence_is_symmetric_on_identical_protocols() {
        let v = Verifier::new(["c"]).sessions(1);
        let p2 = p(P2);
        assert!(v.check_equivalence(&p2, &p2).unwrap().is_none());
    }

    #[test]
    fn equivalence_reports_the_failing_direction() {
        let v = Verifier::new(["c"]).sessions(1);
        let spec = p(P_ABS);
        let p1 = p(P1);
        // P1 has behaviours P lacks (the injected message).
        match v.check_equivalence(&p1, &spec).unwrap() {
            Some((EquivDirection::LeftNotInRight, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
        match v.check_equivalence(&spec, &p1).unwrap() {
            Some((EquivDirection::RightNotInLeft, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn p2_and_p_are_not_equivalent_only_preordered() {
        // P2 implements P, but P has behaviours P2 lacks?  In fact both
        // directions hold here: under the intruder both systems produce
        // the same observable set (deliver M or nothing).  The check
        // documents it.
        let v = Verifier::new(["c"]).sessions(1);
        assert!(v.check_equivalence(&p(P2), &p(P_ABS)).unwrap().is_none());
    }

    #[test]
    fn tiny_budget_answers_inconclusive_not_error() {
        let v = Verifier::new(["c"]).sessions(1).budget(Budget::unlimited().states(3));
        let report = v
            .check(&p(P2), &p(P_ABS))
            .expect("degradation, not an error");
        match report.verdict {
            Verdict::Inconclusive {
                exhausted,
                coverage,
            } => {
                assert_eq!(exhausted, ResourceKind::States);
                assert!(!coverage.is_empty(), "partial coverage is reported");
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        assert!(!report.concrete_coverage.is_empty());
        // And no attack is (soundly) claimed.
        assert!(v.find_attack(&p(P1), &p(P_ABS)).unwrap().is_none());
    }

    #[test]
    fn growing_the_budget_decides_the_check() {
        let small = Verifier::new(["c"]).sessions(1).budget(Budget::unlimited().states(3));
        assert!(!small.check(&p(P2), &p(P_ABS)).unwrap().verdict.decided());
        let big = Verifier::new(["c"]).sessions(1);
        assert!(matches!(
            big.check(&p(P2), &p(P_ABS)).unwrap().verdict,
            Verdict::SecurelyImplements
        ));
    }

    #[test]
    fn a_cancelled_verifier_answers_inconclusive() {
        let flag = Arc::new(AtomicBool::new(true));
        let v = Verifier::new(["c"]).sessions(2).cancel(Arc::clone(&flag));
        let report = v.check(&p(PM2), &p(PM_ABS)).expect("graceful");
        match report.verdict {
            Verdict::Inconclusive { exhausted, .. } => {
                assert_eq!(exhausted, ResourceKind::WallClock);
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        // Clearing the flag restores the full answer.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(
            v.check(&p(PM2), &p(PM_ABS)).unwrap().verdict,
            Verdict::Attack(_)
        ));
    }

    #[test]
    fn pm2_campaign_rediscovers_the_replay_minimally() {
        use spi_semantics::FaultKind;
        // No intruder: any attack is attributable to the network alone,
        // so shrinking cannot collapse the schedule to nothing.
        let v = Verifier::new(["c"]).sessions(2).no_intruder();
        let report = v
            .run_campaign(&p(PM2), &p(PM_ABS), &v.campaign_options(2))
            .unwrap();
        assert_eq!(report.enumerated, 14, "depth-2 universe over one channel");
        let (attacks, survives, inconclusive) = report.tally();
        assert!(attacks > 0, "{report:?}");
        assert_eq!(inconclusive, 0);
        assert!(survives > 0, "drops alone cannot break Pm2");
        for (_, cex) in report.attacks() {
            assert_eq!(
                cex.schedule.total_firings(),
                1,
                "every attack shrinks to one message-creating fault: {cex:?}"
            );
            assert!(matches!(
                cex.schedule.clauses[0].kind,
                FaultKind::Duplicate | FaultKind::Replay
            ));
            let narration = v.narrate_counterexample(&p(PM2), cex).unwrap();
            assert!(!narration.is_empty());
        }
    }

    #[test]
    fn pm3_campaign_survives_depth_one() {
        const PM3: &str = "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | \
             !(^nb)c<nb>.c(x).case x of {z, w}kAB in [w = nb]observe<z>)";
        let v = Verifier::new(["c"]).sessions(2).no_intruder();
        let report = v
            .run_campaign(&p(PM3), &p(PM_ABS), &v.campaign_options(1))
            .unwrap();
        assert!(report.all_survive(), "{report:?}");
    }

    #[test]
    fn reduction_preserves_verdicts_and_shrinks_the_search() {
        const PM3: &str = "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | \
             !(^nb)c<nb>.c(x).case x of {z, w}kAB in [w = nb]observe<z>)";
        let plain = Verifier::new(["c"]).sessions(2);
        let reduced = plain.clone().reduce(ReduceOptions::full());
        // The replay attack on Pm2 survives reduction; Pm3 still holds.
        let attack = reduced.check(&p(PM2), &p(PM_ABS)).unwrap();
        assert!(matches!(attack.verdict, Verdict::Attack(_)), "{attack:?}");
        assert_eq!(attack.reduce, ReduceOptions::full());
        let secure = reduced.check(&p(PM3), &p(PM_ABS)).unwrap();
        assert!(
            matches!(secure.verdict, Verdict::SecurelyImplements),
            "{secure:?}"
        );
        // And the reduced search is strictly smaller.
        let baseline = plain.check(&p(PM2), &p(PM_ABS)).unwrap();
        assert!(
            attack.concrete_stats.states < baseline.concrete_stats.states,
            "{} vs {}",
            attack.concrete_stats.states,
            baseline.concrete_stats.states
        );
    }

    #[test]
    fn every_engine_reaches_the_same_verdicts() {
        for engine in [Engine::Trace, Engine::Bisim, Engine::Both] {
            let v1 = Verifier::new(["c"]).sessions(1).engine(engine);
            let ok = v1.check(&p(P2), &p(P_ABS)).unwrap();
            assert!(
                matches!(ok.verdict, Verdict::SecurelyImplements),
                "{engine}: {:?}",
                ok.verdict
            );
            assert_eq!(ok.engine, engine);
            assert!(ok.traces_checked > 0, "{engine}");
            let attack = v1.check(&p(P1), &p(P_ABS)).unwrap();
            let Verdict::Attack(a) = attack.verdict else {
                panic!("{engine}: expected an attack, got {:?}", attack.verdict);
            };
            assert!(!a.narration.is_empty(), "{engine}: witness narrates");
        }
        // Cross-checked on the replay-prone multi-session protocol too.
        let v = Verifier::new(["c"]).sessions(2).engine(Engine::Both);
        assert!(matches!(
            v.check(&p(PM2), &p(PM_ABS)).unwrap().verdict,
            Verdict::Attack(_)
        ));
    }

    #[test]
    fn plaintext_single_session_fails_with_narration() {
        let v = Verifier::new(["c"]).sessions(1);
        let attack = v
            .find_attack(&p(P1), &p(P_ABS))
            .unwrap()
            .expect("the plaintext protocol is attackable");
        assert!(!attack.narration.is_empty());
        let text = attack.narration.join("\n");
        assert!(text.contains("E"), "the intruder appears: {text}");
    }
}
