//! A deterministic network fault model.
//!
//! The applied-pi line of work treats the attacker as an arbitrary
//! unreliable network that may drop, duplicate, and reorder messages.
//! This module gives that network a first-class, *bounded* description: a
//! [`FaultSpec`] lists per-channel fault clauses with hard caps on how
//! many times each may fire, so exploration under faults stays finite and
//! replayable.  The faults are applied through the machine's existing
//! interception hooks ([`Config::take_output`] / [`Config::deliver`]), so
//! the localization discipline keeps its teeth: a partner-authenticated
//! (localized) channel refuses the network exactly as it refuses any
//! other third party.
//!
//! [`Config::take_output`]: crate::Config::take_output
//! [`Config::deliver`]: crate::Config::deliver

use std::fmt;
use std::str::FromStr;

use spi_addr::{Branch, Path};
use spi_syntax::Name;

use crate::{Canonicalizer, NameTable, RtTerm};

/// One kind of network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The network swallows a message in transit (the output is consumed
    /// but never delivered; the message is remembered in the log).
    Drop,
    /// The network delivers a second copy of a message that is still in
    /// transit, without consuming the original output.  The copy keeps
    /// the original creator stamps — duplication is not re-creation —
    /// which is exactly what makes a replay observable to origin-aware
    /// testers.
    Duplicate,
    /// The network takes a message out of transit into its buffer and may
    /// re-deliver it later, after other traffic has passed.
    Reorder,
    /// The network taps messages in transit into its log and may deliver
    /// a logged copy at any later point (replay from log).
    Replay,
}

impl FaultKind {
    /// All fault kinds, in a fixed order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Replay,
    ];

    /// The keywords of every fault kind, in [`FaultKind::ALL`] order —
    /// handy for "valid kinds are …" error listings.
    #[must_use]
    pub fn keywords() -> Vec<&'static str> {
        FaultKind::ALL.iter().map(|k| k.keyword()).collect()
    }

    /// The keyword used in CLI specs and displays.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Replay => "replay",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for FaultKind {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<FaultKind, FaultParseError> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.keyword() == s)
            .ok_or_else(|| FaultParseError {
                input: s.to_string(),
                reason: format!(
                    "unknown fault kind `{s}` (valid kinds: {})",
                    FaultKind::keywords().join(", ")
                ),
            })
    }
}

/// A malformed fault clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending input.
    pub input: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.input, self.reason)
    }
}

impl std::error::Error for FaultParseError {}

/// One bounded fault clause: `kind` may fire at most `max` times on
/// channels whose base spelling is `chan`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClause {
    /// What the network does.
    pub kind: FaultKind,
    /// The base spelling of the affected channel.
    pub chan: Name,
    /// How many times the clause may fire.
    pub max: u32,
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.kind, self.chan, self.max)
    }
}

impl FromStr for FaultClause {
    type Err = FaultParseError;

    /// Parses `kind:chan` or `kind:chan:max` (the CLI `--fault` syntax).
    fn from_str(s: &str) -> Result<FaultClause, FaultParseError> {
        let mut parts = s.split(':');
        let kind = parts
            .next()
            .unwrap_or_default()
            .parse::<FaultKind>()
            .map_err(|e| FaultParseError {
                input: s.to_string(),
                reason: e.reason,
            })?;
        let chan = parts
            .next()
            .filter(|c| !c.is_empty())
            .ok_or_else(|| FaultParseError {
                input: s.to_string(),
                reason: "missing channel (expected kind:chan[:max])".to_string(),
            })?;
        let max = match parts.next() {
            None => 1,
            Some(m) => m.parse::<u32>().map_err(|_| FaultParseError {
                input: s.to_string(),
                reason: format!("max `{m}` must be a non-negative integer"),
            })?,
        };
        if parts.next().is_some() {
            return Err(FaultParseError {
                input: s.to_string(),
                reason: "too many `:`-separated fields (expected kind:chan[:max])".to_string(),
            });
        }
        Ok(FaultClause {
            kind,
            chan: Name::new(chan),
            max,
        })
    }
}

/// A deterministic fault model: a network position plus bounded clauses.
///
/// The position is where the network "stands" in the process tree for the
/// purposes of localization and creator stamping — by convention the
/// environment slot `‖1` of `(νC)(P | ·)`, the same seat the most-general
/// intruder occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The network's tree position.
    pub position: Path,
    /// The bounded fault clauses.
    pub clauses: Vec<FaultClause>,
}

impl FaultSpec {
    /// A fault model at the conventional environment seat `‖1`.
    #[must_use]
    pub fn new<I>(clauses: I) -> FaultSpec
    where
        I: IntoIterator<Item = FaultClause>,
    {
        FaultSpec {
            position: Path::root().child(Branch::Right),
            clauses: clauses.into_iter().collect(),
        }
    }

    /// A single-clause model (`kind` on `chan`, at most `max` firings).
    #[must_use]
    pub fn single(kind: FaultKind, chan: impl Into<Name>, max: u32) -> FaultSpec {
        FaultSpec::new([FaultClause {
            kind,
            chan: chan.into(),
            max,
        }])
    }

    /// Moves the network to a different tree position.
    #[must_use]
    pub fn at(mut self, position: Path) -> FaultSpec {
        self.position = position;
        self
    }

    /// The canonical form of this model: clauses sorted by
    /// `(kind, chan)`, clauses on the same `(kind, chan)` merged by
    /// summing their firing caps.  Clause order never affects which runs
    /// a model admits (each step any clause with remaining charge may
    /// fire), so two specs with the same canonical form are equivalent —
    /// campaign search dedupes schedules on exactly this form.
    #[must_use]
    pub fn canonical(&self) -> FaultSpec {
        let mut clauses: Vec<FaultClause> = Vec::new();
        for c in &self.clauses {
            match clauses
                .iter_mut()
                .find(|m| m.kind == c.kind && m.chan == c.chan)
            {
                Some(m) => m.max = m.max.saturating_add(c.max),
                None => clauses.push(c.clone()),
            }
        }
        clauses.sort_by(|a, b| (a.kind, &a.chan).cmp(&(b.kind, &b.chan)));
        FaultSpec {
            position: self.position.clone(),
            clauses,
        }
    }

    /// The canonical schedule key: the canonical clauses joined by `+`,
    /// plus the network position.  Stable across clause order and
    /// clause-splitting, so it identifies a schedule in deduplication
    /// tables and campaign checkpoints.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let canon = self.canonical();
        let clauses: Vec<String> = canon.clauses.iter().map(ToString::to_string).collect();
        format!("{}@{}", clauses.join("+"), canon.position.to_bits())
    }

    /// Composes two fault models at the same network position into one
    /// whose clause multiset is the union (canonicalized).  Used by
    /// campaign search to grow multi-fault schedules out of unit clauses.
    #[must_use]
    pub fn compose(&self, other: &FaultSpec) -> FaultSpec {
        debug_assert_eq!(
            self.position, other.position,
            "composed fault models share the network seat"
        );
        let mut merged = self.clone();
        merged.clauses.extend(other.clauses.iter().cloned());
        merged.canonical()
    }

    /// The total number of unit firings the model allows (the sum of the
    /// clause caps) — the "size" a campaign depth bound caps.
    #[must_use]
    pub fn total_firings(&self) -> u32 {
        self.clauses.iter().map(|c| c.max).sum()
    }

    /// The initial (all counters zero, empty buffer and log) network
    /// state for this model.
    #[must_use]
    pub fn initial_state(&self) -> NetworkState {
        NetworkState {
            used: vec![0; self.clauses.len()],
            buffer: Vec::new(),
            log: Vec::new(),
        }
    }
}

impl fmt::Display for FaultSpec {
    /// Renders the *canonical* form, byte-for-byte equal to
    /// [`FaultSpec::canonical_key`].  Campaign dedup tables and checkpoint
    /// files key schedules on the canonical key; error messages and
    /// reports print `Display` — keeping the two identical means a key
    /// quoted in a report can always be pasted back into `--fault` (comma
    /// for `+`) or grepped in a checkpoint verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_key())
    }
}

/// The mutable state of the faulty network along one run: per-clause
/// firing counters, the reorder buffer, and the replay log.
///
/// This is part of the explored state — two configurations with different
/// network states are different states — so it offers a canonical
/// rendering for state deduplication.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkState {
    /// How many times each clause (by index into the spec) has fired.
    pub used: Vec<u32>,
    /// Messages captured for reordering, with the channel they travel on.
    pub buffer: Vec<(Name, RtTerm)>,
    /// Messages the network has seen, available for replay.
    pub log: Vec<(Name, RtTerm)>,
}

impl NetworkState {
    /// Remaining firings for clause `i` under `spec`.
    #[must_use]
    pub fn remaining(&self, spec: &FaultSpec, i: usize) -> u32 {
        spec.clauses[i].max.saturating_sub(self.used[i])
    }

    /// Appends `msg` (on channel `chan`) to the log, deduplicating.
    pub fn log_message(&mut self, chan: &Name, msg: &RtTerm) {
        let entry = (chan.clone(), msg.clone());
        if !self.log.contains(&entry) {
            self.log.push(entry);
        }
    }

    /// Writes a canonical rendering of this network state, using `canon`
    /// for machine-generated name identity (shared with the rendering of
    /// the configuration this state travels with).
    pub fn write_canonical<S: std::fmt::Write>(
        &self,
        canon: &mut Canonicalizer,
        names: &NameTable,
        out: &mut S,
    ) {
        let _ = out.write_str("net[");
        for u in &self.used {
            let _ = write!(out, "{u},");
        }
        let _ = out.write_char(';');
        for (chan, msg) in &self.buffer {
            let _ = out.write_str(chan.as_str());
            let _ = out.write_char(':');
            canon.write_term(msg, names, out);
            let _ = out.write_char(',');
        }
        let _ = out.write_char(';');
        for (chan, msg) in &self.log {
            let _ = out.write_str(chan.as_str());
            let _ = out.write_char(':');
            canon.write_term(msg, names, out);
            let _ = out.write_char(',');
        }
        let _ = out.write_char(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_parsing_round_trips() {
        let c: FaultClause = "duplicate:c:3".parse().unwrap();
        assert_eq!(c.kind, FaultKind::Duplicate);
        assert_eq!(c.chan, Name::new("c"));
        assert_eq!(c.max, 3);
        assert_eq!(c.to_string().parse::<FaultClause>().unwrap(), c);
    }

    #[test]
    fn clause_max_defaults_to_one() {
        let c: FaultClause = "drop:net".parse().unwrap();
        assert_eq!(c.max, 1);
    }

    #[test]
    fn bad_clauses_are_rejected() {
        assert!("mangle:c".parse::<FaultClause>().is_err());
        assert!("drop".parse::<FaultClause>().is_err());
        assert!("drop:c:lots".parse::<FaultClause>().is_err());
        assert!("drop:c:1:extra".parse::<FaultClause>().is_err());
        assert!("drop::1".parse::<FaultClause>().is_err());
    }

    #[test]
    fn spec_tracks_remaining_firings() {
        let spec = FaultSpec::single(FaultKind::Drop, "c", 2);
        let mut st = spec.initial_state();
        assert_eq!(st.remaining(&spec, 0), 2);
        st.used[0] = 2;
        assert_eq!(st.remaining(&spec, 0), 0);
    }

    #[test]
    fn canonical_form_sorts_and_merges() {
        let spec = FaultSpec::new([
            FaultClause {
                kind: FaultKind::Replay,
                chan: Name::new("c"),
                max: 1,
            },
            FaultClause {
                kind: FaultKind::Drop,
                chan: Name::new("c"),
                max: 1,
            },
            FaultClause {
                kind: FaultKind::Replay,
                chan: Name::new("c"),
                max: 2,
            },
        ]);
        let canon = spec.canonical();
        assert_eq!(canon.clauses.len(), 2);
        assert_eq!(canon.clauses[0].kind, FaultKind::Drop);
        assert_eq!(canon.clauses[1].kind, FaultKind::Replay);
        assert_eq!(canon.clauses[1].max, 3, "same-(kind,chan) caps merge");
        assert_eq!(spec.canonical_key(), "drop:c:1+replay:c:3@1");
        assert_eq!(spec.total_firings(), 4);
    }

    #[test]
    fn display_agrees_with_canonical_key() {
        // Dedup tables key on `canonical_key`; reports print `Display`.
        // The two must agree even when the clause list is unsorted and
        // splittable, or a key quoted in an error message can't be found
        // in the checkpoint it supposedly names.
        let spec = FaultSpec::new([
            FaultClause {
                kind: FaultKind::Replay,
                chan: Name::new("c"),
                max: 2,
            },
            FaultClause {
                kind: FaultKind::Drop,
                chan: Name::new("c"),
                max: 1,
            },
            FaultClause {
                kind: FaultKind::Replay,
                chan: Name::new("c"),
                max: 1,
            },
        ]);
        assert_eq!(spec.to_string(), spec.canonical_key());
        assert_eq!(spec.to_string(), "drop:c:1+replay:c:3@1");
        let single = FaultSpec::single(FaultKind::Duplicate, "d", 1);
        assert_eq!(single.to_string(), single.canonical_key());
    }

    #[test]
    fn unknown_kind_error_names_kind_and_lists_valid_ones() {
        let err = "mangle:c".parse::<FaultClause>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`mangle:c`"), "{msg}");
        assert!(msg.contains("unknown fault kind `mangle`"), "{msg}");
        for kind in FaultKind::keywords() {
            assert!(msg.contains(kind), "{msg} should list {kind}");
        }
    }

    #[test]
    fn canonical_key_ignores_clause_order() {
        let a = FaultSpec::single(FaultKind::Drop, "c", 1)
            .compose(&FaultSpec::single(FaultKind::Replay, "d", 1));
        let b = FaultSpec::single(FaultKind::Replay, "d", 1)
            .compose(&FaultSpec::single(FaultKind::Drop, "c", 1));
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a, b, "compose canonicalizes");
    }

    #[test]
    fn log_deduplicates() {
        let mut st = NetworkState::default();
        let m = RtTerm::Var(spi_syntax::Var::new("x"));
        st.log_message(&Name::new("c"), &m);
        st.log_message(&Name::new("c"), &m);
        assert_eq!(st.log.len(), 1);
    }
}
