//! The reflection attack the paper leaves as future work.
//!
//! Section 5.2 closes: *"Note that we are only considering protocols in
//! which the roles of the initiator and responder are clearly separated.
//! If A and B could play both the two roles in parallel sessions, then
//! the protocol above would suffer of a well-known reflection attack."*
//!
//! This module builds that scenario and its classic repair:
//!
//! * [`bidirectional_abstract`] — the secure-by-construction
//!   specification: two multisession localized transfers, one per
//!   direction, with per-party continuation channels;
//! * [`bidirectional_challenge_response`] — both parties run both roles
//!   of `Pm3` under the *same* shared key: vulnerable, the intruder can
//!   reflect a party's own response back at it;
//! * [`bidirectional_tagged`] — the classic fix: the responder includes
//!   its identity inside the encryption and the challenger checks it,
//!   which rules the reflection out.
//!
//! The tree layout aligns the three systems so the verifier can compare
//! them: party `A` is the left component (its responder role at `‖·‖0`,
//! its challenger role at `‖·‖1`), party `B` the right one.

use spi_syntax::builder::{bang, case, ch, ch_loc, enc, inp, mat, n, new, nil, out, par, v};
use spi_syntax::{Name, Process};

use crate::ProtocolError;

/// Builds one direction of the abstract specification:
/// `(νs)(!s̄⟨s⟩.(νm)c̄⟨m⟩ | !s_λ(x).c_λ(z).obs⟨z⟩)` with the two ends
/// placed by the caller.
fn abstract_direction(chan: &str, observe: &str, lam: &str, s: &str) -> (Process, Process) {
    let sender = Process::output(
        ch(s),
        spi_syntax::Term::name(s),
        new("m", out(ch(chan), n("m"), nil())),
    );
    let receiver = Process::input(
        spi_syntax::Channel::loc(spi_syntax::Term::name(s), lam),
        "x_s",
        inp(ch_loc(chan, lam), "z", out(ch(observe), v("z"), nil())),
    );
    (bang(sender), bang(receiver))
}

/// The abstract bidirectional specification.
///
/// Party `A` reveals what it authenticated from `B` on `observe_a`;
/// party `B` reveals what it authenticated from `A` on `observe_b`.
/// Layout: `(νs_ab)(νs_ba)((sendA | recvA) | (sendB | recvB))`.
///
/// # Errors
///
/// Returns [`ProtocolError::StartupNameClash`] when the channel names
/// collide with the reserved startup names.
pub fn bidirectional_abstract(
    chan: &str,
    observe_a: &str,
    observe_b: &str,
) -> Result<Process, ProtocolError> {
    for reserved in ["sAB", "sBA"] {
        if [chan, observe_a, observe_b].contains(&reserved) {
            return Err(ProtocolError::StartupNameClash {
                name: reserved.into(),
            });
        }
    }
    // A → B direction: A's sender hooks B's receiver over sAB.
    let (send_a, recv_b) = abstract_direction(chan, observe_b, "lamAB", "sAB");
    // B → A direction.
    let (send_b, recv_a) = abstract_direction(chan, observe_a, "lamBA", "sBA");
    let party_a = par(send_a, recv_a);
    let party_b = par(send_b, recv_b);
    Ok(Process::restrict(
        Name::new("sAB"),
        Process::restrict(Name::new("sBA"), par(party_a, party_b)),
    ))
}

/// One party of the vulnerable bidirectional `Pm3`: a replicated
/// responder (answers any challenge with `{m, ns}k`) next to a replicated
/// challenger (challenges with a fresh nonce, reveals on this party's
/// observe channel).
fn party_untagged(chan: &str, observe: &str, key: &str) -> Process {
    let responder = new(
        "m",
        inp(
            ch(chan),
            "ns",
            out(ch(chan), enc([n("m"), v("ns")], n(key)), nil()),
        ),
    );
    let challenger = new(
        "nb",
        out(
            ch(chan),
            n("nb"),
            inp(
                ch(chan),
                "x",
                case(
                    v("x"),
                    ["z", "w"],
                    n(key),
                    mat(v("w"), n("nb"), out(ch(observe), v("z"), nil())),
                ),
            ),
        ),
    );
    par(bang(responder), bang(challenger))
}

/// The vulnerable system: both parties run both roles of the paper's
/// `Pm3` under one shared key.
///
/// An intruder can *reflect*: take party `B`'s challenge `N`, feed it to
/// `B`'s own responder, and return the resulting `{M_B, N}K` to `B`'s
/// challenger — `B` then "authenticates from A" a message its own
/// responder created.
#[must_use]
pub fn bidirectional_challenge_response(chan: &str, observe_a: &str, observe_b: &str) -> Process {
    let party_a = party_untagged(chan, observe_a, "kAB");
    let party_b = party_untagged(chan, observe_b, "kAB");
    new("kAB", par(party_a, party_b))
}

/// One party of the repaired protocol: the responder embeds its own
/// identity in the ciphertext and the challenger insists on the *peer's*
/// identity.
fn party_tagged(chan: &str, observe: &str, key: &str, me: &str, peer: &str) -> Process {
    let responder = new(
        "m",
        inp(
            ch(chan),
            "ns",
            out(ch(chan), enc([n("m"), v("ns"), n(me)], n(key)), nil()),
        ),
    );
    let challenger = new(
        "nb",
        out(
            ch(chan),
            n("nb"),
            inp(
                ch(chan),
                "x",
                case(
                    v("x"),
                    ["z", "w", "idr"],
                    n(key),
                    mat(
                        v("w"),
                        n("nb"),
                        mat(v("idr"), n(peer), out(ch(observe), v("z"), nil())),
                    ),
                ),
            ),
        ),
    );
    par(bang(responder), bang(challenger))
}

/// The classic repair: responses are `{M, N, id}K` and each challenger
/// checks that `id` names the *other* party — reflections carry the wrong
/// identity and are rejected.
///
/// The identities `ida`/`idb` are public names (everyone, including the
/// intruder, knows them — the protection comes from the encryption).
#[must_use]
pub fn bidirectional_tagged(chan: &str, observe_a: &str, observe_b: &str) -> Process {
    let party_a = party_tagged(chan, observe_a, "kAB", "ida", "idb");
    let party_b = party_tagged(chan, observe_b, "kAB", "idb", "ida");
    new("kAB", par(party_a, party_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_systems_are_closed() {
        assert!(bidirectional_abstract("c", "oa", "ob").unwrap().is_closed());
        assert!(bidirectional_challenge_response("c", "oa", "ob").is_closed());
        assert!(bidirectional_tagged("c", "oa", "ob").is_closed());
    }

    #[test]
    fn layouts_align() {
        // All three systems are a restriction stack over
        // ((x | y) | (x | y)).
        for p in [
            bidirectional_abstract("c", "oa", "ob").unwrap(),
            bidirectional_challenge_response("c", "oa", "ob"),
            bidirectional_tagged("c", "oa", "ob"),
        ] {
            let mut cur = &p;
            while let Process::Restrict(_, body) = cur {
                cur = body;
            }
            match cur {
                Process::Par(l, r) => {
                    assert!(matches!(**l, Process::Par(_, _)));
                    assert!(matches!(**r, Process::Par(_, _)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn identities_are_public_in_the_tagged_variant() {
        let p = bidirectional_tagged("c", "oa", "ob");
        let free = p.free_names();
        assert!(free.contains("ida"));
        assert!(free.contains("idb"));
        assert!(!free.contains("kAB"));
    }

    #[test]
    fn reserved_names_are_rejected() {
        assert!(bidirectional_abstract("sAB", "oa", "ob").is_err());
    }
}
