//! Protocol library for the authentication-primitives calculus.
//!
//! This crate packages Section 5 of *"Authentication Primitives for
//! Protocol Specifications"* (Bodei, Degano, Focardi, Priami, 2003):
//!
//! * [`startup`] / [`m_startup`] — the paper's trusted-startup macros that
//!   bind location variables to the partners' relative addresses (single
//!   and multi-session);
//! * [`single`] — the single-session protocols: the abstract,
//!   secure-by-construction `P`, the insecure plaintext `P1` and the
//!   shared-key `P2`;
//! * [`multi`] — the multisession protocols: abstract `Pm`, the
//!   replay-vulnerable `Pm2` and the challenge-response `Pm3`;
//! * [`narration`] / [`compile`] — an Alice&Bob narration front-end: parse
//!   message-sequence specifications (`A -> B : {m, n}kab`) and compile
//!   them into spi processes, either with the *concrete* cryptographic
//!   backend or with the *abstract* authentication-primitives backend;
//! * [`extra`] — classic protocols beyond the paper's examples (e.g. the
//!   wide-mouthed-frog key exchange) exercising the same machinery;
//! * [`reflection`] — the reflection attack the paper flags as future
//!   work (both parties playing both roles) and its classic repair.
//!
//! Every protocol is parameterized by its channel and continuation names,
//! and each module documents the paper line it transcribes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
mod error;
pub mod extra;
pub mod multi;
pub mod narration;
pub mod reflection;
pub mod single;
mod startup;

pub use error::ProtocolError;
pub use startup::{m_startup, startup, StartupIndex};
