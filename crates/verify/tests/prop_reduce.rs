//! Property-based tests of the state-space reductions: the
//! signature-guided symmetry quotient is orbit-invariant on arbitrary
//! replicated systems (`verify_symmetry` never fires), reduced and
//! unreduced explorations extract the same weak traces at every worker
//! count, and the reductions compose with every fault kind without
//! changing campaign classifications.

use proptest::prelude::*;
use spi_semantics::{FaultKind, FaultSpec};
use spi_syntax::{parse, Name, Process, Term, Var};
use spi_verify::{
    run_campaign, weak_traces, Budget, CampaignOptions, ExploreOptions, Explorer, Lts,
    ReduceOptions,
};

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("c")),
        Just(Name::new("d")),
        Just(Name::new("m")),
    ]
}

/// A small closed process over `c`/`d` and the session-local nonce `m`.
fn arb_body(depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            arb_name().prop_map(|c| Process::output(
                Term::Name(c.clone()),
                Term::Name(c),
                Process::Nil
            )),
        ]
        .boxed();
    }
    prop_oneof![
        Just(Process::Nil),
        (arb_name(), arb_name(), arb_body(depth - 1))
            .prop_map(|(c, m, p)| Process::output(Term::Name(c), Term::Name(m), p)),
        (arb_name(), arb_body(depth - 1)).prop_map(|(c, p)| Process::input(
            Term::Name(c),
            Var::new("x"),
            p
        )),
        (arb_body(depth - 1), arb_body(depth - 1)).prop_map(|(l, r)| Process::par(l, r)),
    ]
    .boxed()
}

/// A replicated session system: every copy restricts its own nonce `m`,
/// so unfolded copies differ only by machine-made names — exactly the
/// redundancy the session-symmetry quotient removes.
fn arb_session_system() -> impl Strategy<Value = Process> {
    (arb_body(2), arb_body(1)).prop_map(|(body, observer)| {
        Process::par(
            Process::bang(Process::restrict(Name::new("m"), body)),
            observer,
        )
    })
}

fn opts(reduce: ReduceOptions) -> ExploreOptions {
    ExploreOptions {
        unfold_bound: 2,
        budget: Budget::unlimited().states(3_000),
        reduce,
        ..ExploreOptions::default()
    }
}

/// Explores and returns the LTS only when the budget did not truncate it
/// (half-explored systems are not comparable).
fn explored(sys: &Process, o: ExploreOptions) -> Option<Lts> {
    Explorer::new(o).explore(sys).ok().filter(Lts::complete)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The quotient is a canonical form: for every generated system the
    /// brute-force orbit check behind `verify_symmetry` holds — every
    /// permuted variant of every reached state quotients to the same
    /// key.  A violation panics inside the explorer and fails the test.
    #[test]
    fn the_symmetry_quotient_is_orbit_invariant(sys in arb_session_system()) {
        let checked = ExploreOptions {
            verify_symmetry: true,
            ..opts(ReduceOptions { symmetry: true, por: false })
        };
        let _ = Explorer::new(checked).explore(&sys);
    }

    /// Reductions preserve observations at every worker count: the
    /// reduced LTS is bit-identical for workers 1, 2 and 8, and its
    /// exact weak trace set and barbs match the unreduced reference.
    #[test]
    fn reduced_explorations_agree_with_unreduced_at_every_worker_count(
        sys in arb_session_system(),
    ) {
        let tracked = ExploreOptions {
            track_isos: true,
            ..opts(ReduceOptions::none())
        };
        let Some(plain) = explored(&sys, tracked) else { return Ok(()); };
        let mut prints = Vec::new();
        for workers in [1usize, 2, 8] {
            let o = ExploreOptions { workers, ..opts(ReduceOptions::full()) };
            let Some(reduced) = explored(&sys, o) else { return Ok(()); };
            prints.push(reduced.fingerprint());
            prop_assert!(
                reduced.states.len() <= plain.states.len(),
                "reduction grew the state space at workers={}",
                workers
            );
            prop_assert_eq!(
                weak_traces(&reduced, 4),
                weak_traces(&plain, 4),
                "weak traces changed at workers={}",
                workers
            );
            prop_assert_eq!(
                reduced.weak_barbs(),
                plain.weak_barbs(),
                "weak barbs changed at workers={}",
                workers
            );
        }
        prop_assert!(
            prints.windows(2).all(|w| w[0] == w[1]),
            "reduced LTS diverges across worker counts: {:x?}",
            prints
        );
    }

    /// Reduction composes with the faulty-network model: under every
    /// fault kind the reduced exploration still extracts exactly the
    /// unreduced trace set and barbs.
    #[test]
    fn reduction_composes_with_every_fault_kind(
        sys in arb_session_system(),
        kind in prop::sample::select(FaultKind::ALL.to_vec()),
    ) {
        let faults = Some(FaultSpec::single(kind, "c", 1));
        let tracked = ExploreOptions {
            track_isos: true,
            faults: faults.clone(),
            ..opts(ReduceOptions::none())
        };
        let Some(plain) = explored(&sys, tracked) else { return Ok(()); };
        let reduced_opts = ExploreOptions {
            faults,
            ..opts(ReduceOptions::full())
        };
        let Some(reduced) = explored(&sys, reduced_opts) else { return Ok(()); };
        prop_assert_eq!(
            weak_traces(&reduced, 4),
            weak_traces(&plain, 4),
            "weak traces changed under fault kind {:?}",
            kind
        );
        prop_assert_eq!(
            reduced.weak_barbs(),
            plain.weak_barbs(),
            "weak barbs changed under fault kind {:?}",
            kind
        );
    }
}

/// Reduction never changes what a fault campaign concludes: the same
/// schedules, the same per-schedule classifications, reduced or not.
#[test]
fn reduction_preserves_campaign_classifications() {
    let concrete = parse("(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)")
        .expect("concrete parses");
    let spec = parse("(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)")
        .expect("spec parses");
    let campaign = |reduce: ReduceOptions| {
        let mut o = CampaignOptions::new(["c"], 1);
        o.explore = opts(reduce);
        o.explore.budget = Budget::unlimited().states(20_000);
        o.max_visible = 4;
        run_campaign(&concrete, &spec, &o).expect("campaign runs")
    };
    let baseline = campaign(ReduceOptions::none());
    let reduced = campaign(ReduceOptions::full());
    assert_eq!(baseline.enumerated, reduced.enumerated);
    assert_eq!(baseline.results.len(), reduced.results.len());
    for (b, r) in baseline.results.iter().zip(&reduced.results) {
        assert_eq!(b.key, r.key, "schedule universes diverged");
        assert_eq!(
            b.outcome, r.outcome,
            "schedule `{}` classified differently under reduction",
            b.key
        );
    }
    assert!(
        baseline.results.iter().any(|r| r.outcome != baseline.results[0].outcome)
            || baseline.enumerated > 1,
        "campaign too trivial to witness anything"
    );
}
