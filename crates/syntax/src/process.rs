//! Processes of the calculus.

use spi_addr::RelAddr;

use crate::{Channel, Name, Term, Var};

/// The right-hand operand of an address matching `[M ≗ N]P`
/// (Section 3.2 of the paper).
///
/// The paper's testers compare the origin of a received message against a
/// *literal* address (`[z ≗ ‖1‖0•‖1]`), while in-protocol uses compare two
/// located terms; both forms are representable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AddrSide {
    /// Compare against the location tag of another term.
    Term(Box<Term>),
    /// Compare against a literal relative address.
    Lit(RelAddr),
}

/// A process `P, Q, R` of the calculus (Section 2 of the paper, plus the
/// address matching of Section 3.2).
///
/// ```text
/// P, Q, R ::= 0                         nil
///           | M⟨N⟩.P                    output
///           | M(x).P                    input
///           | (νm)P                     restriction
///           | P | P                     parallel composition
///           | [M = N]P                  matching
///           | [M ≗ N]P                  address matching
///           | !P                        replication
///           | case L of {x₁,…,xₖ}N in P shared-key decryption
/// ```
///
/// Output and input subjects are [`Channel`]s, i.e. they carry the
/// localization index of the partner-authentication primitive.
///
/// # Example
///
/// ```
/// use spi_syntax::{parse, Process};
///
/// // A2 of the paper: (νM) c̄⟨{M}K_AB⟩.
/// let a2 = parse("(^m) c<{m}kAB>")?;
/// assert!(matches!(a2, Process::Restrict(_, _)));
/// assert_eq!(a2.to_string(), "(^m)c<{m}kAB>");
/// # Ok::<(), spi_syntax::SyntaxError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Process {
    /// The inert process `0`.
    Nil,
    /// Output `M⟨N⟩.P`: send `N` on channel `M`, continue as `P`.
    Output(Channel, Term, Box<Process>),
    /// Input `M(x).P`: receive on channel `M`, bind the payload to `x` in
    /// `P`.
    Input(Channel, Var, Box<Process>),
    /// Restriction `(νm)P`: declare the fresh private name `m` in `P`.
    Restrict(Name, Box<Process>),
    /// Parallel composition `P | Q`.
    Par(Box<Process>, Box<Process>),
    /// Matching `[M = N]P`: behave as `P` only if `M` equals `N`.
    Match(Term, Term, Box<Process>),
    /// Address matching `[M ≗ N]P`: behave as `P` only if the location
    /// tags of the two operands coincide.
    AddrMatch(Term, AddrSide, Box<Process>),
    /// Replication `!P`: infinitely many copies of `P` in parallel.
    Bang(Box<Process>),
    /// Pair splitting `let (x, y) = M in P` — the projection form of the
    /// *full* spi calculus (the paper works in a simplified fragment and
    /// notes that "extending our proposal to the full calculus is easy"):
    /// if `M` is a pair, bind its components and continue; otherwise the
    /// process is stuck.
    Split {
        /// The term to project.
        pair: Term,
        /// The variable bound to the first component.
        fst: Var,
        /// The variable bound to the second component.
        snd: Var,
        /// The continuation.
        body: Box<Process>,
    },
    /// Decryption `case L of {x₁,…,xₖ}N in P`: if `L` is a ciphertext
    /// under key `N` with arity `k`, bind its components and continue;
    /// otherwise the process is stuck.
    Case {
        /// The term to decrypt.
        scrutinee: Term,
        /// The variables bound to the decrypted components.
        binders: Vec<Var>,
        /// The decryption key.
        key: Term,
        /// The continuation.
        body: Box<Process>,
    },
}

impl Process {
    /// Builds an output with continuation.
    #[must_use]
    pub fn output(ch: impl Into<Channel>, payload: Term, cont: Process) -> Process {
        Process::Output(ch.into(), payload, Box::new(cont))
    }

    /// Builds an input with continuation.
    #[must_use]
    pub fn input(ch: impl Into<Channel>, var: impl Into<Var>, cont: Process) -> Process {
        Process::Input(ch.into(), var.into(), Box::new(cont))
    }

    /// Builds a restriction `(νm)P`.
    #[must_use]
    pub fn restrict(name: impl Into<Name>, body: Process) -> Process {
        Process::Restrict(name.into(), Box::new(body))
    }

    /// Builds a nested restriction `(νm₁)…(νmₖ)P`.
    #[must_use]
    pub fn restrict_all<I>(names: I, body: Process) -> Process
    where
        I: IntoIterator<Item = Name>,
        I::IntoIter: DoubleEndedIterator,
    {
        names
            .into_iter()
            .rev()
            .fold(body, |p, n| Process::Restrict(n, Box::new(p)))
    }

    /// Builds a parallel composition.
    #[must_use]
    pub fn par(left: Process, right: Process) -> Process {
        Process::Par(Box::new(left), Box::new(right))
    }

    /// Builds a matching `[m = n]P`.
    #[must_use]
    pub fn matching(m: Term, n: Term, cont: Process) -> Process {
        Process::Match(m, n, Box::new(cont))
    }

    /// Builds an address matching `[m ≗ n]P` against another term's tag.
    #[must_use]
    pub fn addr_match(m: Term, n: Term, cont: Process) -> Process {
        Process::AddrMatch(m, AddrSide::Term(Box::new(n)), Box::new(cont))
    }

    /// Builds an address matching `[m ≗ l]P` against a literal address.
    #[must_use]
    pub fn addr_match_lit(m: Term, l: RelAddr, cont: Process) -> Process {
        Process::AddrMatch(m, AddrSide::Lit(l), Box::new(cont))
    }

    /// Builds a replication `!P`.
    #[must_use]
    pub fn bang(p: Process) -> Process {
        Process::Bang(Box::new(p))
    }

    /// Builds a pair splitting `let (fst, snd) = pair in body`.
    #[must_use]
    pub fn split(pair: Term, fst: impl Into<Var>, snd: impl Into<Var>, body: Process) -> Process {
        Process::Split {
            pair,
            fst: fst.into(),
            snd: snd.into(),
            body: Box::new(body),
        }
    }

    /// Builds a decryption `case scrutinee of {binders…}key in body`.
    #[must_use]
    pub fn case<I>(scrutinee: Term, binders: I, key: Term, body: Process) -> Process
    where
        I: IntoIterator,
        I::Item: Into<Var>,
    {
        Process::Case {
            scrutinee,
            binders: binders.into_iter().map(Into::into).collect(),
            key,
            body: Box::new(body),
        }
    }

    /// Returns `true` for the inert process.
    #[must_use]
    pub fn is_nil(&self) -> bool {
        matches!(self, Process::Nil)
    }

    /// The number of process constructors — a size measure for benchmarks
    /// and exploration heuristics.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Process::Nil => 1,
            Process::Output(_, _, p)
            | Process::Input(_, _, p)
            | Process::Restrict(_, p)
            | Process::Match(_, _, p)
            | Process::AddrMatch(_, _, p)
            | Process::Bang(p)
            | Process::Split { body: p, .. }
            | Process::Case { body: p, .. } => 1 + p.size(),
            Process::Par(p, q) => 1 + p.size() + q.size(),
        }
    }
}

impl Default for Process {
    /// The default process is `0`.
    fn default() -> Process {
        Process::Nil
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChanIndex;

    #[test]
    fn constructors_build_expected_shapes() {
        let p = Process::output(Term::name("c"), Term::name("m"), Process::Nil);
        match &p {
            Process::Output(ch, payload, cont) => {
                assert_eq!(ch.subject, Term::name("c"));
                assert_eq!(ch.index, ChanIndex::Plain);
                assert_eq!(payload, &Term::name("m"));
                assert!(cont.is_nil());
            }
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn restrict_all_nests_left_to_right() {
        let p = Process::restrict_all([Name::new("a"), Name::new("b")], Process::Nil);
        match p {
            Process::Restrict(a, inner) => {
                assert_eq!(a, Name::new("a"));
                match *inner {
                    Process::Restrict(b, body) => {
                        assert_eq!(b, Name::new("b"));
                        assert!(body.is_nil());
                    }
                    other => panic!("expected inner restriction, got {other:?}"),
                }
            }
            other => panic!("expected restriction, got {other:?}"),
        }
    }

    #[test]
    fn size_counts_constructors() {
        let p = Process::par(
            Process::Nil,
            Process::bang(Process::output(
                Term::name("c"),
                Term::name("m"),
                Process::Nil,
            )),
        );
        // Par + Nil + Bang + Output + Nil.
        assert_eq!(p.size(), 5);
    }

    #[test]
    fn case_collects_binders() {
        let p = Process::case(Term::var("z"), ["x", "y"], Term::name("k"), Process::Nil);
        match p {
            Process::Case { binders, .. } => {
                assert_eq!(binders, vec![Var::new("x"), Var::new("y")]);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn default_is_nil() {
        assert!(Process::default().is_nil());
    }
}
