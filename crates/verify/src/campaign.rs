//! Fault-schedule campaigns with counterexample minimization.
//!
//! A *campaign* asks a stronger question than a single faulty-network
//! check: over **every** bounded combination of network faults (all
//! multi-fault schedules of up to `depth` unit firings, enumerated by
//! [`multi_fault_schedules`] and deduplicated on their canonical keys),
//! which schedules let an attack through, which does the protocol
//! survive, and which stay undecided within the budget?
//!
//! Every failing schedule is then *shrunk* ddmin-style in two
//! dimensions until 1-minimal:
//!
//! 1. **fault clauses** — greedily remove one unit firing at a time
//!    (decrement a clause cap, dropping the clause at zero) as long as
//!    the attack persists; the fixpoint is a schedule where removing any
//!    single unit makes the attack disappear;
//! 2. **the witnessing trace** — cut the witness to its shortest prefix
//!    the specification cannot produce.  Because weak trace sets are
//!    prefix-closed and [`trace_preorder`] already reports the globally
//!    shortest missing trace, this pass is an *enforced invariant*
//!    rather than a search: the final witness has every proper prefix
//!    realizable by the specification.
//!
//! The result is a [`MinimalCounterexample`]: the smallest fault
//! schedule that still breaks the protocol plus the shortest trace
//! witnessing the break — the artifact a protocol designer actually
//! debugs, instead of a depth-`K` haystack.
//!
//! Campaigns are built to run long and survive trouble:
//!
//! * worker panics are caught at the successor boundary (see
//!   [`VerifyError::WorkerPanic`]) and poison only the schedule that
//!   triggered them, reported as [`ScheduleOutcome::Inconclusive`];
//! * a wall-clock deadline or cancellation flag (set on the embedded
//!   [`ExploreOptions`]) stops the campaign between schedules and the
//!   explorations inside one cooperatively;
//! * progress is checkpointed every few schedules to a JSON file that a
//!   later run can `resume` from; resumed campaigns produce bit-for-bit
//!   the same report as uninterrupted ones, because classification is a
//!   deterministic function of the schedule and finished schedules are
//!   replayed verbatim from the checkpoint.
//!
//! [`trace_preorder`]: crate::trace_preorder

use std::collections::HashMap;
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use spi_semantics::{FaultClause, FaultKind, FaultSpec};
use spi_syntax::{Name, Process};

use crate::checkpoint::Json;
use crate::faultsim::multi_fault_schedules;
use crate::verifier::verdict_summary;
use crate::{
    bisim_preorder_sound, trace_preorder_sound, weak_traces, Engine, ExploreOptions, Explorer,
    TraceVerdict, VerifyError,
};

/// Configuration of one fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// The channels faults may strike (base spellings).
    pub channels: Vec<Name>,
    /// The fault kinds in the schedule universe.
    pub kinds: Vec<FaultKind>,
    /// Maximum total unit firings per schedule (the campaign depth).
    pub depth: usize,
    /// Exploration options for every run the campaign performs.  The
    /// `faults` field is overwritten per schedule; `deadline` / `cancel`
    /// also bound the campaign loop itself.
    pub explore: ExploreOptions,
    /// Visible-trace depth of each may-testing comparison.
    pub max_visible: usize,
    /// Which decision procedure(s) classify each schedule.  Under
    /// [`Engine::Both`] the campaign runs the bisimulation check first
    /// and — because a bisimulation failure implies a trace-preorder
    /// failure — skips the full trace-set comparison on every schedule
    /// the bisimulation check already classifies as an attack (counted
    /// in [`CampaignReport::early_rejects`]).
    pub engine: Engine,
    /// Where to write (and resume) the checkpoint file, if anywhere.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint after every this many freshly decided schedules
    /// (`0` disables periodic checkpoints; a final one is still written
    /// whenever a path is configured).
    pub checkpoint_every: usize,
    /// Load previously decided schedules from `checkpoint_path` before
    /// starting (a missing file is a clean start, a mismatched one an
    /// error).
    pub resume: bool,
    /// Stop (reporting `interrupted`) after deciding this many fresh
    /// schedules — deterministic interruption for resume tests.
    pub stop_after: Option<usize>,
    /// Decide only the schedules at enumeration indices
    /// `[offset, offset + count)` — the *work unit* a verification fleet
    /// dispatches to one worker node.  The report then carries exactly
    /// that slice of results (still in enumeration order, with the full
    /// `enumerated` count and the full-campaign identity), so a
    /// coordinator can concatenate unit reports back into the
    /// byte-identical single-process report.  `None` decides everything.
    pub schedule_range: Option<(usize, usize)>,
    /// A shared progress counter bumped once per freshly decided
    /// schedule (relaxed ordering).  Services stream it as a liveness
    /// heartbeat; it is excluded from the campaign identity digest, so
    /// it never affects checkpoints or results.  `None` costs nothing.
    pub progress: Option<Arc<AtomicU64>>,
}

impl CampaignOptions {
    /// A campaign over `channels` up to `depth` unit firings, with all
    /// fault kinds, default exploration options, and no checkpointing.
    #[must_use]
    pub fn new<I, N>(channels: I, depth: usize) -> CampaignOptions
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        CampaignOptions {
            channels: channels.into_iter().map(Into::into).collect(),
            kinds: FaultKind::ALL.to_vec(),
            depth,
            explore: ExploreOptions::default(),
            max_visible: 6,
            engine: Engine::default(),
            checkpoint_path: None,
            checkpoint_every: 8,
            resume: false,
            stop_after: None,
            schedule_range: None,
            progress: None,
        }
    }
}

/// A 1-minimal counterexample extracted from a failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimalCounterexample {
    /// The schedule the campaign originally found the attack under.
    pub original: FaultSpec,
    /// The shrunk schedule: removing any single unit firing from it
    /// makes the attack disappear.  May have *no* clauses at all — then
    /// the attack needs no network faults (the intruder alone causes it).
    pub schedule: FaultSpec,
    /// The shortest distinguishing trace under the minimal schedule;
    /// every proper prefix is producible by the specification.
    pub trace: Vec<String>,
    /// How many unit firings the shrinker removed.
    pub shrink_steps: usize,
}

/// What one schedule did to the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// The schedule admits an attack; here is its minimal form.
    Attack(Box<MinimalCounterexample>),
    /// Within bounds, the protocol survives this schedule.
    Survives {
        /// How many implementation traces were checked for inclusion.
        traces_checked: usize,
    },
    /// The schedule could not be decided — a budget ran out mid-run, a
    /// worker panicked, or the wall clock cut the exploration short.
    /// Never collapsed into "survives": an undecided schedule is an
    /// undecided schedule.
    Inconclusive {
        /// Why the decision was blocked.
        reason: String,
    },
}

/// One schedule's entry in the campaign report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResult {
    /// The canonical schedule key (see [`FaultSpec::canonical_key`]).
    pub key: String,
    /// The schedule itself.
    pub schedule: FaultSpec,
    /// What happened under it.
    pub outcome: ScheduleOutcome,
}

/// The full result of a fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-schedule results, in deterministic enumeration order.  An
    /// interrupted campaign reports a prefix of the full list.
    pub results: Vec<ScheduleResult>,
    /// How many schedules the campaign enumerated in total.
    pub enumerated: usize,
    /// How many results were replayed from the resume checkpoint.
    pub resumed: usize,
    /// How many schedules were decided fresh in this run.
    pub fresh: usize,
    /// `true` when the campaign stopped early (wall clock, cancellation,
    /// or `stop_after`) — the remaining schedules are undecided.
    pub interrupted: bool,
    /// Under [`Engine::Both`], how many classifications (schedule
    /// decisions *and* shrink probes) the bisimulation fast path
    /// resolved as attacks without running the trace-set comparison.
    /// Always zero for the single-engine modes, and a run-local work
    /// statistic only: resumed schedules replay their checkpointed
    /// outcome and perform no classification at all.
    pub early_rejects: u64,
    /// The campaign identity digest (binds checkpoints to their inputs).
    pub identity: String,
}

impl CampaignReport {
    /// The attack entries, in enumeration order.
    pub fn attacks(&self) -> impl Iterator<Item = (&ScheduleResult, &MinimalCounterexample)> {
        self.results.iter().filter_map(|r| match &r.outcome {
            ScheduleOutcome::Attack(cex) => Some((r, cex.as_ref())),
            _ => None,
        })
    }

    /// Counts `(attacks, survives, inconclusive)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for r in &self.results {
            match r.outcome {
                ScheduleOutcome::Attack(_) => t.0 += 1,
                ScheduleOutcome::Survives { .. } => t.1 += 1,
                ScheduleOutcome::Inconclusive { .. } => t.2 += 1,
            }
        }
        t
    }

    /// `true` when every enumerated schedule was decided as surviving —
    /// the campaign's positive claim.
    #[must_use]
    pub fn all_survive(&self) -> bool {
        let (attacks, survives, _) = self.tally();
        attacks == 0 && survives == self.enumerated && !self.interrupted
    }
}

/// Runs a fault campaign over two *closed* systems (the caller has
/// already applied the Definition 4 closure `(νC)(P | X)`; see
/// `Verifier::run_campaign` in `spi-auth` for the protocol-level entry
/// point).  Both systems face each schedule, per the convention that the
/// fault model applies to specification and implementation alike.
///
/// # Errors
///
/// Propagates machine failures and checkpoint I/O problems.  Worker
/// panics and budget exhaustion do **not** error: they classify the
/// schedule as [`ScheduleOutcome::Inconclusive`].
pub fn run_campaign(
    concrete: &Process,
    spec: &Process,
    opts: &CampaignOptions,
) -> Result<CampaignReport, VerifyError> {
    let identity = campaign_identity(concrete, spec, opts);
    let schedules = multi_fault_schedules(opts.channels.iter().cloned(), &opts.kinds, opts.depth);
    let mut prior: HashMap<String, ScheduleResult> = HashMap::new();
    if opts.resume {
        let path = opts.checkpoint_path.as_ref().ok_or_else(|| VerifyError::Checkpoint {
            reason: "resume requested but no checkpoint path configured".into(),
        })?;
        if path.exists() {
            prior = load_checkpoint(path, &identity)?;
        }
    }

    let mut results: Vec<ScheduleResult> = Vec::new();
    let mut cache: HashMap<String, Classified> = HashMap::new();
    let mut resumed = 0usize;
    let mut fresh = 0usize;
    let mut early_rejects = 0u64;
    let mut interrupted = false;
    for (index, sched) in schedules.iter().enumerate() {
        if let Some((offset, count)) = opts.schedule_range {
            if index < offset {
                continue;
            }
            if index >= offset.saturating_add(count) {
                // The end of the work unit is a clean completion, not an
                // interruption: the remaining schedules belong to other
                // units.
                break;
            }
        }
        let key = sched.canonical_key();
        if let Some(done) = prior.get(&key) {
            results.push(done.clone());
            resumed += 1;
            continue;
        }
        if overrun(&opts.explore) || opts.stop_after.is_some_and(|n| fresh >= n) {
            interrupted = true;
            break;
        }
        let outcome = decide_schedule(concrete, spec, opts, sched, &mut cache, &mut early_rejects)?;
        results.push(ScheduleResult {
            key,
            schedule: sched.clone(),
            outcome,
        });
        fresh += 1;
        if let Some(p) = &opts.progress {
            p.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(path) = &opts.checkpoint_path {
            if opts.checkpoint_every > 0 && fresh.is_multiple_of(opts.checkpoint_every) {
                write_checkpoint(path, &identity, &results)?;
            }
        }
    }
    if let Some(path) = &opts.checkpoint_path {
        write_checkpoint(path, &identity, &results)?;
    }
    Ok(CampaignReport {
        results,
        enumerated: schedules.len(),
        resumed,
        fresh,
        interrupted,
        early_rejects,
        identity,
    })
}

/// Raw classification of one schedule — the memoized, deterministic
/// kernel both the enumeration loop and the shrinker call.
#[derive(Debug, Clone)]
enum Classified {
    Attack { witness: Vec<String> },
    Survives { checked: usize },
    Inconclusive { reason: String },
}

fn classify_cached(
    concrete: &Process,
    spec: &Process,
    opts: &CampaignOptions,
    sched: &FaultSpec,
    cache: &mut HashMap<String, Classified>,
    early_rejects: &mut u64,
) -> Result<Classified, VerifyError> {
    let key = sched.canonical_key();
    if let Some(c) = cache.get(&key) {
        return Ok(c.clone());
    }
    let c = classify(concrete, spec, opts, sched, early_rejects)?;
    cache.insert(key, c.clone());
    Ok(c)
}

fn classify(
    concrete: &Process,
    spec: &Process,
    opts: &CampaignOptions,
    sched: &FaultSpec,
    early_rejects: &mut u64,
) -> Result<Classified, VerifyError> {
    let explorer = Explorer::new(schedule_opts(opts, sched));
    let explore = |p: &Process| match explorer.explore(p) {
        Ok(lts) => Ok(Ok(lts)),
        // A poisoned successor computation condemns this schedule only.
        Err(VerifyError::WorkerPanic { payload }) => Ok(Err(format!("worker panic: {payload}"))),
        Err(e) => Err(e),
    };
    let concrete_lts = match explore(concrete)? {
        Ok(lts) => lts,
        Err(reason) => return Ok(Classified::Inconclusive { reason }),
    };
    let spec_lts = match explore(spec)? {
        Ok(lts) => lts,
        Err(reason) => return Ok(Classified::Inconclusive { reason }),
    };
    let verdict = match opts.engine {
        Engine::Trace => trace_preorder_sound(&concrete_lts, &spec_lts, opts.max_visible),
        Engine::Bisim => bisim_preorder_sound(&concrete_lts, &spec_lts, opts.max_visible),
        Engine::Both => {
            // Fast path: a (sound) bisimulation failure implies a
            // trace-preorder failure, so an attack verdict here skips
            // the full trace-set comparison for this schedule.
            let b = bisim_preorder_sound(&concrete_lts, &spec_lts, opts.max_visible);
            if matches!(b, TraceVerdict::Fails { .. }) {
                *early_rejects += 1;
                b
            } else {
                let t = trace_preorder_sound(&concrete_lts, &spec_lts, opts.max_visible);
                if std::mem::discriminant(&t) != std::mem::discriminant(&b) {
                    return Err(VerifyError::EngineDisagreement {
                        trace: verdict_summary(&t),
                        bisim: verdict_summary(&b),
                        witness: match &t {
                            TraceVerdict::Fails { witness } => witness.clone(),
                            _ => Vec::new(),
                        },
                    });
                }
                t
            }
        }
    };
    Ok(match verdict {
        TraceVerdict::Holds { checked } => Classified::Survives { checked },
        TraceVerdict::Fails { witness } => Classified::Attack { witness },
        TraceVerdict::Inconclusive { exhausted } => Classified::Inconclusive {
            reason: format!("{exhausted} budget exhausted mid-schedule"),
        },
    })
}

fn schedule_opts(opts: &CampaignOptions, sched: &FaultSpec) -> ExploreOptions {
    ExploreOptions {
        faults: (!sched.clauses.is_empty()).then(|| sched.clone()),
        ..opts.explore.clone()
    }
}

fn decide_schedule(
    concrete: &Process,
    spec: &Process,
    opts: &CampaignOptions,
    sched: &FaultSpec,
    cache: &mut HashMap<String, Classified>,
    early_rejects: &mut u64,
) -> Result<ScheduleOutcome, VerifyError> {
    match classify_cached(concrete, spec, opts, sched, cache, early_rejects)? {
        Classified::Survives { checked } => Ok(ScheduleOutcome::Survives {
            traces_checked: checked,
        }),
        Classified::Inconclusive { reason } => Ok(ScheduleOutcome::Inconclusive { reason }),
        Classified::Attack { witness } => {
            let (minimal, witness, shrink_steps) =
                shrink_schedule(concrete, spec, opts, sched, witness, cache, early_rejects)?;
            let trace = minimize_trace(spec, opts, &minimal, witness);
            Ok(ScheduleOutcome::Attack(Box::new(MinimalCounterexample {
                original: sched.canonical(),
                schedule: minimal,
                trace,
                shrink_steps,
            })))
        }
    }
}

/// Greedy ddmin over unit firings: repeatedly remove the first single
/// unit (cap decrement, clause removal at zero) whose absence keeps the
/// attack alive.  The fixpoint is 1-minimal by construction — every
/// single-unit reduction was just tried and found attack-free.
fn shrink_schedule(
    concrete: &Process,
    spec: &Process,
    opts: &CampaignOptions,
    original: &FaultSpec,
    first_witness: Vec<String>,
    cache: &mut HashMap<String, Classified>,
    early_rejects: &mut u64,
) -> Result<(FaultSpec, Vec<String>, usize), VerifyError> {
    let mut cur = original.canonical();
    let mut cur_witness = first_witness;
    let mut steps = 0usize;
    'reduce: loop {
        for i in 0..cur.clauses.len() {
            let mut cand = cur.clone();
            if cand.clauses[i].max > 1 {
                cand.clauses[i].max -= 1;
            } else {
                cand.clauses.remove(i);
            }
            if let Classified::Attack { witness } =
                classify_cached(concrete, spec, opts, &cand, cache, early_rejects)?
            {
                cur = cand;
                cur_witness = witness;
                steps += 1;
                continue 'reduce;
            }
        }
        return Ok((cur, cur_witness, steps));
    }
}

/// Trace-dimension minimization: the shortest prefix of `witness` the
/// specification cannot produce under the minimal schedule.  Since weak
/// trace sets are prefix-closed and the classifier already picks the
/// globally shortest missing trace, this normally returns the full
/// witness — the pass *enforces* prefix-minimality rather than
/// discovering it.
fn minimize_trace(
    spec: &Process,
    opts: &CampaignOptions,
    minimal: &FaultSpec,
    witness: Vec<String>,
) -> Vec<String> {
    let Ok(spec_lts) = Explorer::new(schedule_opts(opts, minimal)).explore(spec) else {
        return witness;
    };
    let spec_traces = weak_traces(&spec_lts, opts.max_visible);
    for cut in 1..witness.len() {
        if !spec_traces.contains(&witness[..cut]) {
            return witness[..cut].to_vec();
        }
    }
    witness
}

/// `true` once the campaign loop itself should stop (the same signals
/// the in-flight explorations watch).
fn overrun(opts: &ExploreOptions) -> bool {
    if opts
        .cancel
        .as_ref()
        .is_some_and(|c| c.load(Ordering::Relaxed))
    {
        return true;
    }
    opts.deadline.is_some_and(|d| Instant::now() >= d)
}

/// A digest binding a checkpoint to the campaign that wrote it: both
/// systems plus every knob that influences per-schedule outcomes.
/// Worker count is deliberately excluded — results are bit-for-bit
/// identical for any worker count, so a campaign may resume with a
/// different one.
fn campaign_identity(concrete: &Process, spec: &Process, opts: &CampaignOptions) -> String {
    use std::fmt::Write as _;
    let mut desc = String::from("campaign-v1");
    let _ = write!(desc, "|{concrete}|{spec}");
    for c in &opts.channels {
        let _ = write!(desc, "|{c}");
    }
    for k in &opts.kinds {
        let _ = write!(desc, "|{k}");
    }
    let _ = write!(
        desc,
        "|{}|{}|{:?}|{:?}|{}",
        opts.depth, opts.max_visible, opts.explore.budget, opts.explore.intruder,
        opts.explore.unfold_bound
    );
    // Appended only when non-default so that every pre-engine checkpoint
    // (and every trace-engine one written since) keeps its digest.
    if opts.engine != Engine::Trace {
        let _ = write!(desc, "|engine={}", opts.engine.mode());
    }
    format!("fnv:{:016x}", fnv64(&desc))
}

/// 64-bit FNV-1a (the build is offline, so no hashing crates).
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn chk(reason: impl Into<String>) -> VerifyError {
    VerifyError::Checkpoint {
        reason: reason.into(),
    }
}

/// Rebuilds a [`FaultSpec`] from its canonical key (the inverse of
/// [`FaultSpec::canonical_key`]).
fn parse_schedule_key(key: &str) -> Result<FaultSpec, VerifyError> {
    let (clauses_s, bits) = key
        .rsplit_once('@')
        .ok_or_else(|| chk(format!("schedule key {key:?} lacks an @position")))?;
    let position = bits
        .parse()
        .map_err(|_| chk(format!("schedule key {key:?} has bad position bits")))?;
    let clauses = if clauses_s.is_empty() {
        Vec::new()
    } else {
        clauses_s
            .split('+')
            .map(|c| {
                c.parse::<FaultClause>()
                    .map_err(|e| chk(format!("schedule key {key:?}: {e}")))
            })
            .collect::<Result<_, _>>()?
    };
    Ok(FaultSpec { position, clauses })
}

impl ScheduleResult {
    /// The schedule's JSON record — the one encoding shared by campaign
    /// checkpoints, `spi campaign --format json`, and the `spi serve`
    /// response body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schedule".to_string(), Json::Str(self.key.clone()))];
        match &self.outcome {
            ScheduleOutcome::Survives { traces_checked } => {
                fields.push(("outcome".into(), Json::Str("survives".into())));
                fields.push(("traces_checked".into(), Json::count(*traces_checked)));
            }
            ScheduleOutcome::Inconclusive { reason } => {
                fields.push(("outcome".into(), Json::Str("inconclusive".into())));
                fields.push(("reason".into(), Json::Str(reason.clone())));
            }
            ScheduleOutcome::Attack(cex) => {
                fields.push(("outcome".into(), Json::Str("attack".into())));
                fields.push(("minimal".into(), Json::Str(cex.schedule.canonical_key())));
                fields.push(("shrink_steps".into(), Json::count(cex.shrink_steps)));
                fields.push(("trace".into(), Json::str_arr(cex.trace.iter().cloned())));
            }
        }
        Json::Obj(fields)
    }
}

fn write_checkpoint(
    path: &FsPath,
    identity: &str,
    results: &[ScheduleResult],
) -> Result<(), VerifyError> {
    let json = Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("identity".into(), Json::Str(identity.to_string())),
        (
            "processed".into(),
            Json::Arr(results.iter().map(ScheduleResult::to_json).collect()),
        ),
    ]);
    // Write-then-rename so a crash mid-write never corrupts a resumable
    // checkpoint.
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json.render())
        .map_err(|e| chk(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| chk(format!("cannot move checkpoint into {}: {e}", path.display())))
}

fn load_checkpoint(
    path: &FsPath,
    identity: &str,
) -> Result<HashMap<String, ScheduleResult>, VerifyError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| chk(format!("cannot read {}: {e}", path.display())))?;
    let json = Json::parse(&text).map_err(|e| chk(format!("{}: {e}", path.display())))?;
    match json.get("version").and_then(Json::as_int) {
        Some(1) => {}
        other => return Err(chk(format!("unsupported checkpoint version {other:?}"))),
    }
    let found = json.get("identity").and_then(Json::as_str).unwrap_or("");
    if found != identity {
        return Err(chk(format!(
            "checkpoint belongs to a different campaign \
             (identity {found}, expected {identity})"
        )));
    }
    let mut out = HashMap::new();
    for item in json
        .get("processed")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let key = item
            .get("schedule")
            .and_then(Json::as_str)
            .ok_or_else(|| chk("a processed entry lacks its schedule key"))?;
        let schedule = parse_schedule_key(key)?;
        let outcome = match item.get("outcome").and_then(Json::as_str) {
            Some("survives") => ScheduleOutcome::Survives {
                traces_checked: item
                    .get("traces_checked")
                    .and_then(Json::as_int)
                    .and_then(|n| usize::try_from(n).ok())
                    .unwrap_or(0),
            },
            Some("inconclusive") => ScheduleOutcome::Inconclusive {
                reason: item
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            },
            Some("attack") => {
                let minimal_key = item
                    .get("minimal")
                    .and_then(Json::as_str)
                    .ok_or_else(|| chk(format!("attack entry {key:?} lacks its minimal key")))?;
                let trace = item
                    .get("trace")
                    .and_then(Json::as_arr)
                    .unwrap_or_default()
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| chk(format!("attack entry {key:?} has a bad trace")))
                    })
                    .collect::<Result<Vec<String>, _>>()?;
                ScheduleOutcome::Attack(Box::new(MinimalCounterexample {
                    original: schedule.clone(),
                    schedule: parse_schedule_key(minimal_key)?,
                    trace,
                    shrink_steps: item
                        .get("shrink_steps")
                        .and_then(Json::as_int)
                        .and_then(|n| usize::try_from(n).ok())
                        .unwrap_or(0),
                }))
            }
            other => return Err(chk(format!("unknown outcome {other:?} in {key:?}"))),
        };
        out.insert(
            key.to_string(),
            ScheduleResult {
                key: key.to_string(),
                schedule,
                outcome,
            },
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;
    use spi_syntax::parse;

    /// A sender plus a *greedy* receiver that would observe a second
    /// delivery if the network ever produced one.
    fn greedy() -> Process {
        parse("(^c)(^m)(c<m>.0 | c(x).observe<x>.c(y).observe<y>)").expect("parses")
    }

    /// The specification: one delivery, one observation.
    fn single_shot() -> Process {
        parse("(^c)(^m)(c<m>.0 | c(x).observe<x>)").expect("parses")
    }

    fn opts(depth: usize) -> CampaignOptions {
        let mut o = CampaignOptions::new(["c"], depth);
        o.explore.workers = 1;
        o
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spi-campaign-{}-{tag}.json", std::process::id()))
    }

    #[test]
    fn depth_one_separates_message_creating_faults() {
        // Duplicate and replay deliver a second copy (attack on the
        // single-shot spec); drop and reorder never add deliveries.
        let report = run_campaign(&greedy(), &single_shot(), &opts(1)).unwrap();
        assert_eq!(report.enumerated, 4);
        let (attacks, survives, inconclusive) = report.tally();
        assert_eq!((attacks, survives, inconclusive), (2, 2, 0), "{report:?}");
        for (r, cex) in report.attacks() {
            assert!(
                matches!(
                    cex.schedule.clauses[0].kind,
                    FaultKind::Duplicate | FaultKind::Replay
                ),
                "{r:?}"
            );
            assert_eq!(cex.shrink_steps, 0, "a single unit cannot shrink");
            assert_eq!(cex.trace.len(), 2, "two observations distinguish");
        }
        assert!(!report.interrupted);
    }

    #[test]
    fn attacks_shrink_to_one_minimal_schedules() {
        let report = run_campaign(&greedy(), &single_shot(), &opts(2)).unwrap();
        assert_eq!(report.enumerated, 14);
        let (attacks, _, inconclusive) = report.tally();
        assert!(attacks > 2, "pairs containing duplicate/replay also fail");
        assert_eq!(inconclusive, 0);
        for (_, cex) in report.attacks() {
            // Every minimal schedule is a single unit of a
            // message-creating fault: 1-minimality stripped the padding
            // (drops, reorders, extra caps) away.
            assert_eq!(cex.schedule.total_firings(), 1, "{cex:?}");
            assert!(matches!(
                cex.schedule.clauses[0].kind,
                FaultKind::Duplicate | FaultKind::Replay
            ));
            // The witness never grows out of the spec's reach: every
            // proper prefix is a specification trace.
            assert!(!cex.trace.is_empty());
        }
        // The padded pair drop+duplicate shrank by one step.
        let padded = report
            .attacks()
            .find(|(r, _)| r.key == "drop:c:1+duplicate:c:1@1")
            .expect("pair enumerated");
        assert_eq!(padded.1.shrink_steps, 1);
        assert_eq!(padded.1.schedule.canonical_key(), "duplicate:c:1@1");
        assert_eq!(padded.1.original.canonical_key(), "drop:c:1+duplicate:c:1@1");
    }

    #[test]
    fn engine_both_early_rejects_attacks_without_changing_the_tally() {
        let trace = run_campaign(&greedy(), &single_shot(), &opts(2)).unwrap();
        assert_eq!(trace.early_rejects, 0, "single-engine runs never skip");

        let mut o = opts(2);
        o.engine = Engine::Both;
        let both = run_campaign(&greedy(), &single_shot(), &o).unwrap();
        // Every attacking classification (schedule decisions and shrink
        // probes alike) was settled by the bisimulation check alone.
        assert!(both.early_rejects > 0, "{both:?}");
        assert_eq!(both.tally(), trace.tally());
        assert_ne!(both.identity, trace.identity, "engine is digested");
        for (t, b) in trace.results.iter().zip(&both.results) {
            assert_eq!(t.key, b.key);
            match (&t.outcome, &b.outcome) {
                (ScheduleOutcome::Attack(tc), ScheduleOutcome::Attack(bc)) => {
                    assert_eq!(tc.schedule, bc.schedule, "same minimal schedule");
                    assert_eq!(tc.trace.len(), bc.trace.len(), "same witness length");
                }
                (t, b) => assert_eq!(
                    std::mem::discriminant(t),
                    std::mem::discriminant(b),
                    "{t:?} vs {b:?}"
                ),
            }
        }

        let mut o = opts(2);
        o.engine = Engine::Bisim;
        let bisim = run_campaign(&greedy(), &single_shot(), &o).unwrap();
        assert_eq!(bisim.early_rejects, 0, "nothing to skip without a cross-check");
        assert_eq!(bisim.tally(), trace.tally());
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_not_survives() {
        let mut o = opts(1);
        o.explore.budget = Budget::unlimited().states(2);
        let report = run_campaign(&greedy(), &single_shot(), &o).unwrap();
        let (attacks, survives, inconclusive) = report.tally();
        assert_eq!((attacks, survives), (0, 0));
        assert_eq!(inconclusive, 4, "{report:?}");
        for r in &report.results {
            match &r.outcome {
                ScheduleOutcome::Inconclusive { reason } => {
                    assert!(reason.contains("budget exhausted"), "{reason}");
                }
                other => panic!("expected inconclusive, got {other:?}"),
            }
        }
    }

    #[test]
    fn worker_panics_poison_single_schedules_without_aborting() {
        let mut o = opts(1);
        o.explore.panic_after_states = Some(0);
        let report = run_campaign(&greedy(), &single_shot(), &o).unwrap();
        assert_eq!(report.results.len(), 4, "the campaign ran to completion");
        for r in &report.results {
            match &r.outcome {
                ScheduleOutcome::Inconclusive { reason } => {
                    assert!(reason.contains("worker panic"), "{reason}");
                    assert!(reason.contains("test hook"), "{reason}");
                }
                other => panic!("expected inconclusive, got {other:?}"),
            }
        }
    }

    #[test]
    fn interrupted_campaigns_resume_to_the_same_report() {
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        let uninterrupted = run_campaign(&greedy(), &single_shot(), &opts(1)).unwrap();

        let mut first = opts(1);
        first.checkpoint_path = Some(path.clone());
        first.checkpoint_every = 1;
        first.stop_after = Some(2);
        let partial = run_campaign(&greedy(), &single_shot(), &first).unwrap();
        assert!(partial.interrupted);
        assert_eq!(partial.results.len(), 2);
        assert_eq!(partial.fresh, 2);

        let mut second = opts(1);
        second.checkpoint_path = Some(path.clone());
        second.resume = true;
        let resumed = run_campaign(&greedy(), &single_shot(), &second).unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(resumed.fresh, 2);
        assert_eq!(resumed.results, uninterrupted.results, "same final summary");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoints_from_a_different_campaign_are_rejected() {
        let path = tmp("identity");
        let _ = std::fs::remove_file(&path);
        let mut first = opts(1);
        first.checkpoint_path = Some(path.clone());
        run_campaign(&greedy(), &single_shot(), &first).unwrap();

        // Same path, different depth: the identity digest differs.
        let mut second = opts(2);
        second.checkpoint_path = Some(path.clone());
        second.resume = true;
        let err = run_campaign(&greedy(), &single_shot(), &second).unwrap_err();
        assert!(
            matches!(&err, VerifyError::Checkpoint { reason } if reason.contains("identity")),
            "{err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schedule_ranges_partition_the_campaign_without_overlap() {
        // The fleet coordinator splits a campaign into work units of
        // contiguous enumeration indices.  Concatenating the unit
        // reports must reproduce the single-process report exactly.
        let whole = run_campaign(&greedy(), &single_shot(), &opts(2)).unwrap();
        let total = whole.enumerated;
        let mut stitched = Vec::new();
        let unit = 5;
        let mut offset = 0;
        while offset < total {
            let mut o = opts(2);
            o.schedule_range = Some((offset, unit));
            let part = run_campaign(&greedy(), &single_shot(), &o).unwrap();
            assert!(!part.interrupted, "a finished unit is a clean finish");
            assert_eq!(part.enumerated, total, "units see the full space");
            assert!(part.results.len() <= unit);
            stitched.extend(part.results);
            offset += unit;
        }
        assert_eq!(stitched, whole.results, "units stitch back losslessly");

        // A range past the end decides nothing but still succeeds.
        let mut o = opts(2);
        o.schedule_range = Some((total + 10, unit));
        let empty = run_campaign(&greedy(), &single_shot(), &o).unwrap();
        assert!(empty.results.is_empty());
    }

    #[test]
    fn schedule_keys_round_trip_through_parsing() {
        let spec = FaultSpec::single(FaultKind::Drop, "c", 1)
            .compose(&FaultSpec::single(FaultKind::Replay, "d", 3));
        let parsed = parse_schedule_key(&spec.canonical_key()).unwrap();
        assert_eq!(parsed, spec.canonical());
        assert!(parse_schedule_key("drop:c:1").is_err(), "no position");
        assert!(parse_schedule_key("mangle:c:1@1").is_err(), "bad kind");
        // The empty schedule (attack without faults) round-trips too.
        let empty = parse_schedule_key("@1").unwrap();
        assert!(empty.clauses.is_empty());
    }

    #[test]
    fn resume_without_a_path_is_a_checkpoint_error() {
        let mut o = opts(1);
        o.resume = true;
        let err = run_campaign(&greedy(), &single_shot(), &o).unwrap_err();
        assert!(matches!(err, VerifyError::Checkpoint { .. }), "{err:?}");
    }
}
