//! Seeded chaos schedules for the fleet layer.
//!
//! The toolkit's whole verification story rests on *deterministic*
//! fault injection — `spi-semantics::faults` enumerates message-level
//! faults on a reproducible schedule.  This module applies the same
//! philosophy one layer up: a [`ChaosPlan`] expands a seed into a
//! fixed sequence of fleet-level faults (worker kills, dropped
//! heartbeats, partitioned sockets), indexed by the coordinator's
//! request counter.  Re-running with the same seed replays the same
//! failures at the same points, so a chaos counterexample is a seed,
//! not a flaky CI log.
//!
//! The expansion is intentionally biased: the **first event is always
//! a worker kill**, early in the run.  A chaos schedule that never
//! kills anyone tests nothing, so every seed exercises the
//! re-dispatch path the fleet exists to get right.

use spi_verify::jsonlite::Json;

/// One injected fleet fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Send a real `shutdown` to the `victim`-th alive worker (modulo
    /// the fleet size at trigger time) — the worker drains and dies.
    KillWorker {
        /// Index into the alive-worker list at trigger time.
        victim: usize,
    },
    /// Ignore every heartbeat for the next `requests` requests, so
    /// failure detection fires on healthy workers.
    DropHeartbeats {
        /// How many requests the deafness lasts.
        requests: usize,
    },
    /// Treat dials to the `victim`-th alive worker as failed for the
    /// next `requests` requests — a one-way partition.
    Partition {
        /// Index into the alive-worker list at trigger time.
        victim: usize,
        /// How many requests the partition lasts.
        requests: usize,
    },
}

impl ChaosEvent {
    fn to_json(&self) -> Json {
        match self {
            ChaosEvent::KillWorker { victim } => Json::Obj(vec![
                ("kind".to_string(), Json::str("kill-worker")),
                ("victim".to_string(), Json::count(*victim)),
            ]),
            ChaosEvent::DropHeartbeats { requests } => Json::Obj(vec![
                ("kind".to_string(), Json::str("drop-heartbeats")),
                ("requests".to_string(), Json::count(*requests)),
            ]),
            ChaosEvent::Partition { victim, requests } => Json::Obj(vec![
                ("kind".to_string(), Json::str("partition")),
                ("victim".to_string(), Json::count(*victim)),
                ("requests".to_string(), Json::count(*requests)),
            ]),
        }
    }
}

/// A deterministic schedule of [`ChaosEvent`]s keyed by request index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the plan was expanded from.
    pub seed: u64,
    /// `(request index, event)` pairs, sorted by request index.
    pub events: Vec<(usize, ChaosEvent)>,
}

/// SplitMix64 — the tiny, well-mixed PRNG the vendored rand shim also
/// builds on.  Good enough to scatter a handful of events; no
/// cryptographic claims.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// Expands `seed` into a schedule covering `horizon` requests.
    ///
    /// The first event is always a [`ChaosEvent::KillWorker`] within
    /// the first third of the horizon (mid-campaign, not after the
    /// interesting work is done); later events are drawn uniformly
    /// from all three kinds, spaced pseudo-randomly.
    #[must_use]
    pub fn generate(seed: u64, horizon: usize) -> ChaosPlan {
        let mut state = seed ^ 0xc3a5_c85c_97cb_3127;
        let mut events = Vec::new();
        let horizon = horizon.max(3);
        // The guaranteed early kill.
        let first_at = 1 + usize::try_from(splitmix64(&mut state)).unwrap_or(0) % (horizon / 3);
        let victim = usize::try_from(splitmix64(&mut state)).unwrap_or(0) % 8;
        events.push((first_at, ChaosEvent::KillWorker { victim }));
        // Subsequent events, spaced by 1..horizon/2 requests.
        let mut at = first_at;
        loop {
            at += 1 + usize::try_from(splitmix64(&mut state)).unwrap_or(0) % (horizon / 2).max(1);
            if at >= horizon {
                break;
            }
            let kind = splitmix64(&mut state) % 3;
            let victim = usize::try_from(splitmix64(&mut state)).unwrap_or(0) % 8;
            let span = 1 + usize::try_from(splitmix64(&mut state)).unwrap_or(0) % 4;
            let event = match kind {
                0 => ChaosEvent::KillWorker { victim },
                1 => ChaosEvent::DropHeartbeats { requests: span },
                _ => ChaosEvent::Partition {
                    victim,
                    requests: span,
                },
            };
            events.push((at, event));
        }
        ChaosPlan { seed, events }
    }

    /// The events scheduled exactly at `request_index`.
    pub fn at(&self, request_index: usize) -> impl Iterator<Item = &ChaosEvent> {
        self.events
            .iter()
            .filter(move |(at, _)| *at == request_index)
            .map(|(_, e)| e)
    }

    /// A JSON rendering of the plan (logged by the coordinator so a
    /// chaos run documents its own schedule).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "seed".to_string(),
                Json::count(usize::try_from(self.seed).unwrap_or(usize::MAX)),
            ),
            (
                "events".to_string(),
                Json::Arr(
                    self.events
                        .iter()
                        .map(|(at, e)| {
                            let mut obj = match e.to_json() {
                                Json::Obj(fields) => fields,
                                _ => unreachable!("events render as objects"),
                            };
                            obj.insert(0, ("at".to_string(), Json::count(*at)));
                            Json::Obj(obj)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(ChaosPlan::generate(42, 30), ChaosPlan::generate(42, 30));
        assert_ne!(
            ChaosPlan::generate(42, 30).events,
            ChaosPlan::generate(43, 30).events
        );
    }

    #[test]
    fn every_plan_opens_with_an_early_kill() {
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, 30);
            let (at, first) = &plan.events[0];
            assert!(matches!(first, ChaosEvent::KillWorker { .. }), "seed {seed}");
            assert!(*at >= 1 && *at <= 10, "seed {seed} kills at {at}");
            // Events are sorted and within the horizon.
            let mut last = 0;
            for (at, _) in &plan.events {
                assert!(*at > last || *at == plan.events[0].0, "sorted");
                assert!(*at < 30);
                last = *at;
            }
        }
    }

    #[test]
    fn plans_render_as_json() {
        let plan = ChaosPlan::generate(7, 30);
        let json = plan.to_json().render_compact();
        assert!(json.contains("\"seed\":7"), "{json}");
        assert!(json.contains("kill-worker"), "{json}");
        let _ = Json::parse(&json).expect("valid JSON");
    }

    #[test]
    fn at_filters_by_request_index() {
        let plan = ChaosPlan::generate(7, 30);
        let (first_at, _) = plan.events[0];
        assert_eq!(plan.at(first_at).count(), 1);
        let total: usize = (0..30).map(|i| plan.at(i).count()).sum();
        assert_eq!(total, plan.events.len());
    }
}
