//! Errors raised by the abstract machine.

use std::error::Error;
use std::fmt;

use spi_addr::{AddrError, Path};

/// An error raised while loading or stepping a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// The loaded process had free variables and cannot be executed.
    OpenProcess {
        /// A description of the offending variables.
        vars: String,
    },
    /// A term that is not a transmissible message (e.g. a located literal
    /// `l M`, which is a pattern) appeared in message position.
    NotAMessage {
        /// A description of the offending term.
        term: String,
    },
    /// An action referred to a tree position that is not a leaf of the
    /// expected kind.
    NotALeaf {
        /// The offending position.
        path: Path,
    },
    /// An action was fired that the current configuration does not enable.
    NotEnabled {
        /// Why the action is not enabled.
        reason: String,
    },
    /// A replication was asked to unfold beyond the exploration bound.
    UnfoldBoundReached {
        /// The position of the replication.
        path: Path,
    },
    /// An address operation failed.
    Addr(AddrError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OpenProcess { vars } => {
                write!(f, "process has free variables: {vars}")
            }
            MachineError::NotAMessage { term } => {
                write!(f, "term {term} is not a transmissible message")
            }
            MachineError::NotALeaf { path } => {
                write!(f, "position {path} is not a leaf of the expected kind")
            }
            MachineError::NotEnabled { reason } => {
                write!(f, "action is not enabled: {reason}")
            }
            MachineError::UnfoldBoundReached { path } => {
                write!(f, "replication at {path} reached its unfold bound")
            }
            MachineError::Addr(e) => write!(f, "{e}"),
        }
    }
}

impl Error for MachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MachineError::Addr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AddrError> for MachineError {
    fn from(e: AddrError) -> MachineError {
        MachineError::Addr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::NotEnabled {
            reason: "subjects differ".into(),
        };
        assert!(e.to_string().contains("subjects differ"));
        let e = MachineError::Addr(AddrError::MissingSeparator);
        assert!(e.to_string().contains("separator"));
    }

    #[test]
    fn source_chains_addr_errors() {
        let e = MachineError::Addr(AddrError::MissingSeparator);
        assert!(e.source().is_some());
        let e = MachineError::OpenProcess { vars: "x".into() };
        assert!(e.source().is_none());
    }
}
