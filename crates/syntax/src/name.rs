//! The three sorts of identifiers of the calculus: names, variables and
//! location variables.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A shared immutable identifier string.
///
/// All three identifier sorts wrap an `Arc<str>` so cloning terms and
/// processes — which the abstract machine does constantly — never copies
/// string data.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Ident(Arc<str>);

impl Ident {
    fn new(text: &str) -> Ident {
        Ident(Arc::from(text))
    }
}

macro_rules! ident_sort {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Ident);

        impl $name {
            /// Builds an identifier of this sort from its spelling.
            #[must_use]
            pub fn new(text: impl AsRef<str>) -> $name {
                $name(Ident::new(text.as_ref()))
            }

            /// The spelling of the identifier.
            #[must_use]
            pub fn as_str(&self) -> &str {
                &self.0 .0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> $name {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> $name {
                $name::new(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                self.as_str()
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.as_str() == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.as_str() == *other
            }
        }
    };
}

ident_sort! {
    /// A *name* of the calculus: `a, b, c, k, m, n` in the paper's grammar.
    ///
    /// Names denote channels, keys and atomic data.  Free names are global
    /// constants of a system; the restriction operator `(νm)P` declares a
    /// fresh private name.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::Name;
    ///
    /// let k = Name::new("kAB");
    /// assert_eq!(k.as_str(), "kAB");
    /// assert_eq!(k.to_string(), "kAB");
    /// ```
    Name
}

ident_sort! {
    /// A term *variable*: `x, y, z, w` in the paper's grammar.
    ///
    /// Variables are bound by inputs `M(x).P` and by decryptions
    /// `case L of {x₁,…,xₖ}N in P`, and stand for the terms received or
    /// recovered there.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::Var;
    ///
    /// let x = Var::new("x");
    /// assert_eq!(x.as_str(), "x");
    /// ```
    Var
}

ident_sort! {
    /// A *location variable* `λ`, the paper's Section 3.1 device for
    /// partner authentication when the partner's relative address is not
    /// known in advance.
    ///
    /// A channel indexed `c_λ` accepts its first communication from any
    /// partner; the semantics then instantiates `λ` with the partner's
    /// relative address, so every later use of a channel indexed by the
    /// same `λ` within the same sequential component is pinned to that
    /// partner.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::LocVar;
    ///
    /// let lam = LocVar::new("lamB");
    /// assert_eq!(lam.to_string(), "lamB");
    /// ```
    LocVar
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_compare_by_spelling() {
        assert_eq!(Name::new("a"), Name::new("a"));
        assert_ne!(Name::new("a"), Name::new("b"));
    }

    #[test]
    fn sorts_are_distinct_types() {
        // This is a compile-time property; we just exercise construction.
        let _: (Name, Var, LocVar) = (Name::new("a"), Var::new("a"), LocVar::new("a"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let n = Name::new("shared");
        let m = n.clone();
        assert_eq!(n, m);
    }

    #[test]
    fn usable_as_hash_keys_with_str_lookup() {
        let mut set: HashSet<Name> = HashSet::new();
        set.insert(Name::new("kAB"));
        assert!(set.contains("kAB"));
        assert!(!set.contains("kAC"));
    }

    #[test]
    fn conversions_from_strings() {
        let a: Name = "a".into();
        let b: Name = String::from("a").into();
        assert_eq!(a, b);
        assert_eq!(a, "a");
        assert_eq!(a.as_ref(), "a");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Name::new("a") < Name::new("b"));
        assert!(Var::new("x1") < Var::new("x2"));
    }
}
