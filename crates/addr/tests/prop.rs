//! Property-based tests for the relative-address algebra.
//!
//! These check the algebraic laws the proved semantics relies on: that
//! `between`/`resolve_at` are inverse, that inversion is an involution
//! realizing Definition 2's compatibility, and — most importantly — that
//! the forwarding composition of Section 3.2 is *coherent*: composing the
//! creator tag with the communication address always yields the direct
//! creator-receiver address.

use proptest::prelude::*;
use spi_addr::{Branch, Path, RelAddr};

fn arb_branch() -> impl Strategy<Value = Branch> {
    prop_oneof![Just(Branch::Left), Just(Branch::Right)]
}

fn arb_path(max_len: usize) -> impl Strategy<Value = Path> {
    prop::collection::vec(arb_branch(), 0..=max_len).prop_map(Path::new)
}

proptest! {
    #[test]
    fn between_is_minimal(a in arb_path(8), b in arb_path(8)) {
        let l = RelAddr::between(&a, &b);
        // Definition 1: when both components are non-empty they start
        // with flipped tags.
        if let (Some(x), Some(y)) = (l.observer().first(), l.target().first()) {
            prop_assert_eq!(x.flip(), y);
        }
        // Re-asserting the invariant through the checked constructor
        // always succeeds.
        prop_assert!(RelAddr::new(l.observer().clone(), l.target().clone()).is_ok());
    }

    #[test]
    fn resolve_inverts_between(a in arb_path(8), b in arb_path(8)) {
        let l = RelAddr::between(&a, &b);
        prop_assert_eq!(l.resolve_at(&a).unwrap(), b.clone());
        prop_assert_eq!(l.inverse().resolve_at(&b).unwrap(), a);
    }

    #[test]
    fn inverse_is_involutive(a in arb_path(8), b in arb_path(8)) {
        let l = RelAddr::between(&a, &b);
        prop_assert_eq!(l.inverse().inverse(), l);
    }

    #[test]
    fn compatibility_is_symmetric(a in arb_path(8), b in arb_path(8)) {
        let l = RelAddr::between(&a, &b);
        let m = l.inverse();
        prop_assert!(l.is_compatible(&m));
        prop_assert!(m.is_compatible(&l));
    }

    #[test]
    fn self_address_is_identity(a in arb_path(8)) {
        prop_assert!(RelAddr::between(&a, &a).is_identity());
    }

    #[test]
    fn composition_is_coherent(
        creator in arb_path(7),
        sender in arb_path(7),
        receiver in arb_path(7),
    ) {
        // The law behind "the identity of names is maintained" when a
        // located datum is forwarded: retagging through the communication
        // address equals direct addressing.
        let tag = RelAddr::between(&sender, &creator);
        let comm = RelAddr::between(&receiver, &sender);
        let composed = tag.compose(&comm).unwrap();
        prop_assert_eq!(composed, RelAddr::between(&receiver, &creator));
    }

    #[test]
    fn composition_with_identity_comm_is_noop(
        creator in arb_path(7),
        holder in arb_path(7),
    ) {
        let tag = RelAddr::between(&holder, &creator);
        prop_assert_eq!(tag.compose(&RelAddr::identity()).unwrap(), tag);
    }

    #[test]
    fn composition_associates_along_forward_chains(
        creator in arb_path(6),
        s1 in arb_path(6),
        s2 in arb_path(6),
        receiver in arb_path(6),
    ) {
        // Forwarding creator → s1 → s2 → receiver, tag updates pointwise;
        // the result never depends on the chaining order.
        let tag0 = RelAddr::between(&s1, &creator);
        let hop1 = RelAddr::between(&s2, &s1);
        let hop2 = RelAddr::between(&receiver, &s2);
        let left = tag0.compose(&hop1).unwrap().compose(&hop2).unwrap();
        // Collapsing the two hops first.
        let collapsed = hop1.compose(&hop2).unwrap();
        let right = tag0.compose(&collapsed).unwrap();
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left, RelAddr::between(&receiver, &creator));
    }

    #[test]
    fn path_bits_round_trip(a in arb_path(12)) {
        let s = a.to_bits();
        let back: Path = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn reladdr_display_parse_round_trip(a in arb_path(8), b in arb_path(8)) {
        let l = RelAddr::between(&a, &b);
        let compact = format!("{}.{}", l.observer().to_bits(), l.target().to_bits());
        let back: RelAddr = compact.parse().unwrap();
        prop_assert_eq!(back, l);
    }

    #[test]
    fn common_ancestor_is_longest_shared_prefix(a in arb_path(10), b in arb_path(10)) {
        let anc = a.common_ancestor(&b);
        prop_assert!(anc.is_prefix_of(&a));
        prop_assert!(anc.is_prefix_of(&b));
        // Maximality: the next arcs (when both exist) differ.
        let k = anc.len();
        if a.len() > k && b.len() > k {
            prop_assert_ne!(a[k], b[k]);
        }
    }
}
