//! Compile Alice&Bob narrations to spi processes and verify them.
//!
//! ```sh
//! cargo run --release --example narration_compiler
//! ```
//!
//! Shows the workflow the paper advocates: start from the informal
//! narration, compile a *concrete* cryptographic system and the unique
//! *abstract* secure-by-construction specification, then check the
//! implementation relation mechanically.

use spi_auth::protocols::compile::{compile_abstract, compile_concrete, CompileOptions};
use spi_auth::protocols::extra;
use spi_auth::protocols::narration::Narration;
use spi_auth::{Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The paper's challenge-response, as a narration -----------------
    let cr = Narration::parse(
        "\
protocol paper-challenge-response
roles A, B
share A B : kab
fresh A : m
fresh B : nb
1. B -> A : nb
2. A -> B : {m, nb}kab
claim B authenticates m from A
",
    )?;
    println!("narration:\n{}", cr.display());

    let single = CompileOptions::default();
    let multi = CompileOptions {
        replicate: true,
        ..CompileOptions::default()
    };

    let concrete = compile_concrete(&cr, &multi)?;
    let abstract_spec = compile_abstract(&cr, &multi)?;
    println!("concrete  = {concrete}");
    println!("abstract  = {abstract_spec}\n");

    let verifier = Verifier::new(["c"]).sessions(2);
    let report = verifier.check(&concrete, &abstract_spec)?;
    println!(
        "challenge-response, 2 sessions: {}",
        match &report.verdict {
            Verdict::SecurelyImplements => "securely implements its specification".to_owned(),
            Verdict::Attack(a) => format!("ATTACK\n{}", a.narration.join("\n")),
            other => format!("unexpected verdict: {other:?}"),
        }
    );

    // ---- Drop the nonce from the narration: the replay reappears --------
    let naive = Narration::parse(
        "\
protocol naive
roles A, B
share A B : kab
fresh A : m
1. A -> B : {m}kab
claim B authenticates m from A
",
    )?;
    let concrete = compile_concrete(&naive, &multi)?;
    let abstract_spec = compile_abstract(&naive, &multi)?;
    match verifier.check(&concrete, &abstract_spec)?.verdict {
        Verdict::Attack(attack) => {
            println!("\nwithout the nonce, 2 sessions: REPLAY");
            for line in &attack.narration {
                println!("   {line}");
            }
        }
        other => println!("\nunexpected: naive protocol passed? ({other:?})"),
    }

    // ---- A three-role classic through the same pipeline ------------------
    let wmf = extra::wide_mouthed_frog_narration();
    println!("\n{}", wmf.display());
    let compiled = compile_concrete(&wmf, &single)?;
    println!("wide-mouthed frog compiles to:\n{compiled}");
    // Three roles sit at ‖0‖0, ‖0‖1, ‖1 inside the protocol.
    let wmf_verifier = Verifier::new(["c"])
        .roles([("A", "00"), ("B", "01"), ("S", "1")])
        .sessions(1);
    let lts = wmf_verifier.explore(&compiled)?;
    println!(
        "\nexplored under the most-general intruder: {} states, {} edges",
        lts.stats.states, lts.stats.edges
    );
    Ok(())
}
