//! Program files: named process definitions plus a main system.
//!
//! Protocol files quickly outgrow a single expression; a *program* names
//! its roles and composes them:
//!
//! ```text
//! def A = (^m) c<{m}kAB>
//! def B = c(z).case z of {w}kAB in observe<w>
//!
//! system (^kAB)($A | $B)
//! ```
//!
//! `def NAME = PROCESS` binds a name; `$NAME` references it (definitions
//! may reference earlier definitions; references are inlined, so the
//! result is an ordinary [`Process`]).  The final `system PROCESS` line is
//! the program's meaning.  Inlining happens *before* binding analysis, so
//! a definition may mention variables bound at its use site — definitions
//! are templates, not closed processes.

use std::collections::BTreeMap;

use crate::lex::{Lexer, TokenKind};
use crate::{parse, Process, Span, SyntaxError};

/// A parsed program: the definitions in order, and the main system with
/// references inlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The definitions, in source order, with earlier references inlined.
    pub defs: Vec<(String, Process)>,
    /// The main system, fully inlined.
    pub system: Process,
}

/// Parses a program file.
///
/// # Errors
///
/// Returns a [`SyntaxError`] for malformed lines, undefined or duplicate
/// references, and any error of the process parser.
///
/// # Example
///
/// ```
/// use spi_syntax::parse_program;
///
/// let prog = parse_program(
///     "def A = (^m) c<m>\n\
///      def B = c(z).observe<z>\n\
///      system $A | $B\n",
/// )?;
/// assert_eq!(prog.system.to_string(), "(^m)c<m> | c(z).observe<z>");
/// # Ok::<(), spi_syntax::SyntaxError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let mut defs: Vec<(String, Process)> = Vec::new();
    let mut by_name: BTreeMap<String, Process> = BTreeMap::new();
    let mut system: Option<Process> = None;

    // Definitions may span several lines: a new section starts at a line
    // beginning with `def` or `system`.
    let mut sections: Vec<(usize, String)> = Vec::new();
    let mut offset = 0usize;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("def ") || trimmed == "def" || trimmed.starts_with("system") {
            sections.push((offset, line.to_owned()));
        } else if let Some((_, last)) = sections.last_mut() {
            last.push('\n');
            last.push_str(line);
        } else if !trimmed.is_empty() && !trimmed.starts_with("--") {
            return Err(SyntaxError::new(
                "expected `def NAME = PROCESS` or `system PROCESS`",
                Span::new(offset, offset + line.len()),
            ));
        }
        offset += line.len() + 1;
    }

    for (start, section) in sections {
        let at = |msg: String| SyntaxError::new(msg, Span::new(start, start + section.len()));
        if let Some(rest) = section.trim_start().strip_prefix("def ") {
            let (name, body_src) = rest
                .split_once('=')
                .ok_or_else(|| at("a definition needs `= PROCESS`".into()))?;
            let name = name.trim().to_owned();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(at(format!("bad definition name {name:?}")));
            }
            if by_name.contains_key(&name) {
                return Err(at(format!("duplicate definition of {name}")));
            }
            let inlined_src = inline_refs(body_src, &by_name, start)?;
            let body = parse(&inlined_src)?;
            by_name.insert(name.clone(), body.clone());
            defs.push((name, body));
        } else if let Some(rest) = section.trim_start().strip_prefix("system") {
            if system.is_some() {
                return Err(at("duplicate `system` line".into()));
            }
            let inlined_src = inline_refs(rest, &by_name, start)?;
            system = Some(parse(&inlined_src)?);
        }
    }

    let system = system.ok_or_else(|| {
        SyntaxError::new(
            "a program needs a `system PROCESS` line",
            Span::point(src.len()),
        )
    })?;
    Ok(Program { defs, system })
}

/// Replaces every `$NAME` with the *printed form* of the definition,
/// parenthesized so it stays one prefix-level unit.
fn inline_refs(
    src: &str,
    defs: &BTreeMap<String, Process>,
    base_offset: usize,
) -> Result<String, SyntaxError> {
    let mut out = String::with_capacity(src.len());
    let mut rest = src;
    let mut consumed = 0usize;
    while let Some(pos) = rest.find('$') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        let name_len = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .map(char::len_utf8)
            .sum::<usize>();
        let name = &after[..name_len];
        let here = base_offset + consumed + pos;
        if name.is_empty() {
            return Err(SyntaxError::new(
                "`$` must be followed by a definition name",
                Span::new(here, here + 1),
            ));
        }
        let def = defs.get(name).ok_or_else(|| {
            SyntaxError::new(
                format!("reference to undefined process {name}"),
                Span::new(here, here + 1 + name_len),
            )
        })?;
        out.push('(');
        out.push_str(&def.to_string());
        out.push(')');
        consumed += pos + 1 + name_len;
        rest = &after[name_len..];
    }
    out.push_str(rest);
    // Quick sanity: the inlined text must still lex (defense against
    // definitions whose printed form would merge with surroundings).
    Lexer::new(&out).tokenize().map(|toks| {
        debug_assert!(toks.last().map(|t| t.kind.clone()) == Some(TokenKind::Eof));
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_inline_references() {
        let prog =
            parse_program("def A = (^m) c<m>\ndef B = c(z).observe<z>\nsystem $A | $B\n").unwrap();
        assert_eq!(prog.defs.len(), 2);
        assert_eq!(prog.system, parse("(^m)c<m> | c(z).observe<z>").unwrap());
    }

    #[test]
    fn definitions_may_reference_earlier_ones() {
        // The calculus has no sequential composition of processes — only
        // prefixes take continuations — so references compose in parallel.
        let prog =
            parse_program("def Send = c<m>\ndef Duo = $Send | $Send\nsystem $Duo\n").unwrap();
        assert_eq!(prog.system, parse("c<m> | c<m>").unwrap());
    }

    #[test]
    fn multiline_definitions_are_joined() {
        let prog =
            parse_program("def B = c(z).\n    case z of {w}k in\n    observe<w>\nsystem $B\n")
                .unwrap();
        assert!(prog.system.to_string().contains("case"));
    }

    #[test]
    fn undefined_references_are_reported() {
        let err = parse_program("system $Nope\n").unwrap_err();
        assert!(err.message().contains("undefined process Nope"));
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        let err = parse_program("def A = 0\ndef A = 0\nsystem $A\n").unwrap_err();
        assert!(err.message().contains("duplicate definition"));
    }

    #[test]
    fn missing_system_is_reported() {
        let err = parse_program("def A = 0\n").unwrap_err();
        assert!(err.message().contains("`system PROCESS`"));
    }

    #[test]
    fn leading_comments_and_blanks_are_fine() {
        let prog =
            parse_program("-- the paper's P2\n\ndef A = (^m) c<{m}kAB>\nsystem (^kAB)($A | 0)\n")
                .unwrap();
        assert!(prog.system.is_closed());
    }

    #[test]
    fn stray_text_is_rejected() {
        let err = parse_program("hello world\nsystem 0\n").unwrap_err();
        assert!(err.message().contains("expected `def"));
    }

    #[test]
    fn references_keep_grouping() {
        // $P inlines parenthesized: the parallel stays one unit under !.
        let prog = parse_program("def P = a<x> | b(y)\nsystem !$P\n").unwrap();
        assert_eq!(prog.system, parse("!(a<x> | b(y))").unwrap());
    }
}
