//! Cross-validation: the trace-inclusion verdicts of the main verifier
//! agree with Definition 3 run directly over synthesized testers — the
//! paper's own notion, one explicit test `(T, β)` at a time.

use spi_auth_repro::auth::Verifier;
use spi_auth_repro::protocols::{multi, single};

#[test]
fn definition3_agrees_on_the_single_session_results() {
    let verifier = Verifier::new(["c"]);
    let p = single::abstract_protocol("c", "observe").unwrap();

    // P2 ⊑ P: no synthesized tester distinguishes them.
    let outcome = verifier
        .check_definition3(&single::shared_key("c", "observe"), &p)
        .unwrap();
    assert!(outcome.holds(), "{:?}", outcome.violations);
    assert!(outcome.testers >= 2, "origin + replay testers were run");

    // P1 ⋢ P: some tester passes P1|E and not P|E.
    let outcome = verifier
        .check_definition3(&single::plaintext("c", "observe"), &p)
        .unwrap();
    assert!(!outcome.holds(), "a tester detects the injection");
}

#[test]
fn definition3_agrees_on_the_multisession_results() {
    let verifier = Verifier::new(["c"]).sessions(2);
    let pm = multi::abstract_protocol("c", "observe").unwrap();

    // Pm2 ⋢ Pm: the replay tester (the paper's T = o(x).o(y).[x ≗ y]β̄)
    // distinguishes them.
    let outcome = verifier
        .check_definition3(&multi::shared_key("c", "observe"), &pm)
        .unwrap();
    assert!(!outcome.holds());
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("observe(z).observe(w)")),
        "the replay tester is among the distinguishers: {:?}",
        outcome.violations
    );
}

#[test]
fn definition3_passes_the_challenge_response() {
    let verifier = Verifier::new(["c"]).sessions(2);
    let pm = multi::abstract_protocol("c", "observe").unwrap();
    let outcome = verifier
        .check_definition3(&multi::challenge_response("c", "observe"), &pm)
        .unwrap();
    assert!(outcome.holds(), "{:?}", outcome.violations);
}
