//! Static simplification of processes.
//!
//! The simplifier performs the reductions that are deterministic at the
//! syntax level: matchings between closed terms, decryptions of literal
//! ciphertexts, projections of literal pairs, unused restrictions and
//! dead replications.  It is *address-aware*: in this calculus the tree
//! shape of parallel compositions carries meaning (relative addresses!),
//! so — unlike in the plain spi calculus — the simplifier never rewrites
//! `P | 0` to `P` or reassociates parallels; that would move every
//! component and silently break localized channels and located patterns.
//!
//! Terms mentioning located literals, and address matchings, are left
//! untouched for the same reason: their meaning depends on the position
//! where they run.

use crate::{AddrSide, Process, Term};

/// Is this a closed, position-independent term whose *syntactic* identity
/// determines its run-time identity?  (Free names denote themselves;
/// bound names denote their binder; located literals are excluded.)
fn is_rigid(t: &Term) -> bool {
    match t {
        Term::Name(_) => true,
        Term::Var(_) => false,
        Term::Pair(a, b) => is_rigid(a) && is_rigid(b),
        Term::Enc { body, key } => body.iter().all(is_rigid) && is_rigid(key),
        Term::Located { .. } => false,
    }
}

impl Process {
    /// Simplifies the process, preserving its explored behaviour exactly
    /// (checked by property tests): same tree shape, same addresses, same
    /// weak traces.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::parse;
    ///
    /// let p = parse("[m = m] case {a}k of {x}k in (^unused) let (y, z) = (x, b) in d<y>")?;
    /// assert_eq!(p.simplify().to_string(), "d<a>");
    /// // Parallel structure is never touched: addresses depend on it.
    /// let q = parse("0 | [m = n] d<a>")?;
    /// assert_eq!(q.simplify().to_string(), "0 | 0");
    /// # Ok::<(), spi_syntax::SyntaxError>(())
    /// ```
    #[must_use]
    pub fn simplify(&self) -> Process {
        match self {
            Process::Nil => Process::Nil,
            Process::Output(ch, t, cont) => {
                Process::Output(ch.clone(), t.clone(), Box::new(cont.simplify()))
            }
            Process::Input(ch, x, cont) => {
                Process::Input(ch.clone(), x.clone(), Box::new(cont.simplify()))
            }
            Process::Restrict(n, body) => {
                let body = body.simplify();
                if body.free_names().contains(n) {
                    Process::Restrict(n.clone(), Box::new(body))
                } else {
                    // An unused restriction allocates a name nobody can
                    // ever observe; restrictions are not tree nodes, so
                    // dropping it moves nothing.
                    body
                }
            }
            // Parallel shape is load-bearing: simplify the children, keep
            // the node — even when a child is 0.
            Process::Par(l, r) => Process::par(l.simplify(), r.simplify()),
            Process::Match(a, b, cont) => {
                if is_rigid(a) && is_rigid(b) {
                    if a == b {
                        cont.simplify()
                    } else {
                        Process::Nil
                    }
                } else {
                    Process::Match(a.clone(), b.clone(), Box::new(cont.simplify()))
                }
            }
            // Address matchings are position-dependent: keep them.
            Process::AddrMatch(a, side, cont) => Process::AddrMatch(
                a.clone(),
                match side {
                    AddrSide::Term(t) => AddrSide::Term(t.clone()),
                    AddrSide::Lit(l) => AddrSide::Lit(l.clone()),
                },
                Box::new(cont.simplify()),
            ),
            Process::Bang(body) => {
                let body = body.simplify();
                if body.is_nil() {
                    // !0 only ever spawns dead copies.
                    Process::Nil
                } else {
                    Process::bang(body)
                }
            }
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => match pair {
                Term::Pair(a, b) if is_rigid(a) && is_rigid(b) => {
                    body.subst_var(fst, a).subst_var(snd, b).simplify()
                }
                _ if is_rigid(pair) => Process::Nil, // a rigid non-pair is stuck
                _ => Process::Split {
                    pair: pair.clone(),
                    fst: fst.clone(),
                    snd: snd.clone(),
                    body: Box::new(body.simplify()),
                },
            },
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => match scrutinee {
                Term::Enc {
                    body: parts,
                    key: actual,
                } if is_rigid(scrutinee)
                    && is_rigid(key)
                    && actual.as_ref() == key
                    && parts.len() == binders.len() =>
                {
                    let mut p = (**body).clone();
                    for (x, v) in binders.iter().zip(parts.iter()) {
                        p = p.subst_var(x, v);
                    }
                    p.simplify()
                }
                _ if is_rigid(scrutinee) && is_rigid(key) => {
                    // A rigid scrutinee that is not a matching ciphertext
                    // can never decrypt.
                    Process::Nil
                }
                _ => Process::Case {
                    scrutinee: scrutinee.clone(),
                    binders: binders.clone(),
                    key: key.clone(),
                    body: Box::new(body.simplify()),
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn simp(src: &str) -> String {
        parse(src).expect("parses").simplify().to_string()
    }

    #[test]
    fn trivial_matches_vanish() {
        assert_eq!(simp("[m = m] c<a>"), "c<a>");
        assert_eq!(simp("[m = n] c<a>"), "0");
        assert_eq!(simp("[{a}k = {a}k] c<a>"), "c<a>");
        assert_eq!(simp("[{a}k = {a}h] c<a>"), "0");
    }

    #[test]
    fn variable_matches_stay() {
        assert_eq!(simp("c(x).[x = m] d<x>"), "c(x).[x = m]d<x>");
    }

    #[test]
    fn literal_decryptions_execute() {
        assert_eq!(simp("case {a, b}k of {x, y}k in d<(x, y)>"), "d<(a, b)>");
        assert_eq!(simp("case {a}k of {x}h in d<x>"), "0");
        assert_eq!(simp("case m of {x}k in d<x>"), "0");
        // Arity mismatch is stuck too.
        assert_eq!(simp("case {a, b}k of {x}k in d<x>"), "0");
    }

    #[test]
    fn literal_projections_execute() {
        assert_eq!(simp("let (x, y) = (a, b) in d<(y, x)>"), "d<(b, a)>");
        assert_eq!(simp("let (x, y) = m in d<x>"), "0");
    }

    #[test]
    fn unused_restrictions_disappear() {
        assert_eq!(simp("(^unused) c<a>"), "c<a>");
        assert_eq!(simp("(^m) c<m>"), "(^m)c<m>");
        // The use may be deep.
        assert_eq!(simp("(^m) c(x).d<{x}m>"), "(^m)c(x).d<{x}m>");
    }

    #[test]
    fn parallel_shape_is_preserved() {
        // Addresses live in the parallel structure: 0 components stay.
        assert_eq!(simp("0 | c<a>"), "0 | c<a>");
        assert_eq!(simp("[m = n] c<a> | d<b>"), "0 | d<b>");
    }

    #[test]
    fn dead_replications_collapse() {
        assert_eq!(simp("![m = n] c<a>"), "0");
        assert_eq!(simp("!c<a>"), "!c<a>");
    }

    #[test]
    fn address_matchings_are_untouched() {
        assert_eq!(simp("[m ~ @(0.1)] c<a>"), "[m ~ @(0.1)]c<a>");
    }

    #[test]
    fn located_literals_are_untouched() {
        // [0.1]m is position-dependent: even though it is closed, the
        // simplifier must not evaluate the match.
        assert_eq!(simp("[[0.1]m = m] c<a>"), "[[0.1]m = m]c<a>");
    }

    #[test]
    fn simplification_is_idempotent() {
        for src in [
            "[m = m] case {a}k of {x}k in (^u) d<x>",
            "c(x).[x = m] d<x> | (^m) e<m>",
            "!(^m) c<m>",
        ] {
            let once = parse(src).unwrap().simplify();
            assert_eq!(once.simplify(), once, "{src}");
        }
    }
}
