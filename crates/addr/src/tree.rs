//! The binary tree of sequential processes (Figure 1 of the paper).

use std::fmt;
use std::sync::Arc;

use crate::{AddrError, Branch, Path, RelAddr};

/// The tree of sequential processes of a system, "built using the binary
/// parallel composition as the main operator" (Section 3).
///
/// Internal nodes are occurrences of the parallel operator; leaves carry
/// the sequential components.  Left arcs are tagged `‖0` and right arcs
/// `‖1`, so every leaf is identified by its absolute [`Path`] and the
/// relative address between two leaves is
/// [`RelAddr::between`] of their paths.
///
/// # Example
///
/// Figure 1, the tree of `(P0|P1)|(P2|(P3|P4))`:
///
/// ```
/// use spi_addr::{Path, ProcTree, RelAddr};
///
/// let fig1 = ProcTree::node(
///     ProcTree::node(ProcTree::leaf("P0"), ProcTree::leaf("P1")),
///     ProcTree::node(
///         ProcTree::leaf("P2"),
///         ProcTree::node(ProcTree::leaf("P3"), ProcTree::leaf("P4")),
///     ),
/// );
/// assert_eq!(fig1.leaf_count(), 5);
/// let p1 = fig1.find(|p| *p == "P1").unwrap();
/// let p3 = fig1.find(|p| *p == "P3").unwrap();
/// assert_eq!(RelAddr::between(&p1, &p3).to_string(), "‖0‖1•‖1‖1‖0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProcTree<T> {
    /// A sequential component.
    Leaf(T),
    /// A parallel composition: left child under `‖0`, right under `‖1`.
    ///
    /// Children are [`Arc`]-shared: cloning a tree is two reference
    /// bumps, and mutating a leaf copies only the spine from the root to
    /// that leaf (state-space explorers clone whole configurations per
    /// candidate successor, so structural sharing is what makes those
    /// clones affordable).
    Node(Arc<ProcTree<T>>, Arc<ProcTree<T>>),
}

/// The two children of a parallel node, as returned by
/// [`ProcTree::children`].
pub type TreeNode<'a, T> = (&'a ProcTree<T>, &'a ProcTree<T>);

impl<T> ProcTree<T> {
    /// Builds a leaf holding a sequential component.
    #[must_use]
    pub fn leaf(value: T) -> ProcTree<T> {
        ProcTree::Leaf(value)
    }

    /// Builds a parallel node with the given children.
    #[must_use]
    pub fn node(left: ProcTree<T>, right: ProcTree<T>) -> ProcTree<T> {
        ProcTree::Node(Arc::new(left), Arc::new(right))
    }

    /// Returns `true` when the tree is a single leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, ProcTree::Leaf(_))
    }

    /// The children of the root, or `None` at a leaf.
    #[must_use]
    pub fn children(&self) -> Option<TreeNode<'_, T>> {
        match self {
            ProcTree::Leaf(_) => None,
            ProcTree::Node(l, r) => Some((l.as_ref(), r.as_ref())),
        }
    }

    /// The number of leaves (sequential components) in the tree.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            ProcTree::Leaf(_) => 1,
            ProcTree::Node(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// The subtree rooted at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PathOutOfTree`] when the path descends below a
    /// leaf.
    pub fn subtree(&self, path: &Path) -> Result<&ProcTree<T>, AddrError> {
        let mut cur = self;
        for (i, b) in path.iter().enumerate() {
            match cur {
                ProcTree::Leaf(_) => {
                    return Err(AddrError::PathOutOfTree {
                        path: path.prefix(i + 1),
                    })
                }
                ProcTree::Node(l, r) => {
                    cur = match b {
                        Branch::Left => l,
                        Branch::Right => r,
                    };
                }
            }
        }
        Ok(cur)
    }

    /// The leaf value at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PathOutOfTree`] when `path` does not denote a
    /// leaf of the tree.
    pub fn leaf_at(&self, path: &Path) -> Result<&T, AddrError> {
        match self.subtree(path)? {
            ProcTree::Leaf(v) => Ok(v),
            ProcTree::Node(_, _) => Err(AddrError::PathOutOfTree { path: path.clone() }),
        }
    }

    /// Mutable access to the leaf value at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PathOutOfTree`] when `path` does not denote a
    /// leaf of the tree.
    pub fn leaf_at_mut(&mut self, path: &Path) -> Result<&mut T, AddrError>
    where
        T: Clone,
    {
        let slot = self.slot_at_mut(path)?;
        match slot {
            ProcTree::Leaf(v) => Ok(v),
            ProcTree::Node(_, _) => Err(AddrError::PathOutOfTree { path: path.clone() }),
        }
    }

    /// Replaces the subtree at `path` with `replacement`, returning the
    /// subtree that was there.
    ///
    /// This is how the machine grows the tree in place: a leaf `P|Q`
    /// becomes a node with two fresh leaves, and an unfolding replication
    /// `!P` becomes the node `(P, !P)` — so the paths of all *other*
    /// leaves never change and previously captured relative addresses
    /// remain valid.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PathOutOfTree`] when `path` descends below a
    /// leaf.
    pub fn replace(
        &mut self,
        path: &Path,
        replacement: ProcTree<T>,
    ) -> Result<ProcTree<T>, AddrError>
    where
        T: Clone,
    {
        let slot = self.slot_at_mut(path)?;
        Ok(std::mem::replace(slot, replacement))
    }

    /// Iterates over `(path, leaf)` pairs in left-to-right order.
    pub fn leaves(&self) -> Leaves<'_, T> {
        Leaves {
            stack: vec![(Path::root(), self)],
        }
    }

    /// The path of the first leaf (in left-to-right order) whose value
    /// satisfies `pred`.
    #[must_use]
    pub fn find<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Option<Path> {
        self.leaves().find(|(_, v)| pred(v)).map(|(path, _)| path)
    }

    /// Maps every leaf value, preserving the tree shape (and hence every
    /// relative address).
    #[must_use]
    pub fn map<U, F: FnMut(&Path, &T) -> U>(&self, mut f: F) -> ProcTree<U> {
        fn go<T, U>(
            t: &ProcTree<T>,
            path: &mut Path,
            f: &mut impl FnMut(&Path, &T) -> U,
        ) -> ProcTree<U> {
            match t {
                ProcTree::Leaf(v) => ProcTree::Leaf(f(path, v)),
                ProcTree::Node(l, r) => {
                    path.push(Branch::Left);
                    let nl = go(l, path, f);
                    path.pop();
                    path.push(Branch::Right);
                    let nr = go(r, path, f);
                    path.pop();
                    ProcTree::node(nl, nr)
                }
            }
        }
        go(self, &mut Path::root(), &mut f)
    }

    /// The relative address of the leaf at `target` as seen from the leaf
    /// at `observer` — [`RelAddr::between`] of the two paths, provided
    /// both denote leaves of this tree.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PathOutOfTree`] when either path is not a
    /// leaf.
    pub fn address_between(&self, observer: &Path, target: &Path) -> Result<RelAddr, AddrError> {
        self.leaf_at(observer)?;
        self.leaf_at(target)?;
        Ok(RelAddr::between(observer, target))
    }

    /// Descends to the slot at `path`, copying shared spine nodes on the
    /// way down (copy-on-write): siblings of the path stay shared with
    /// every other clone of this tree.
    fn slot_at_mut(&mut self, path: &Path) -> Result<&mut ProcTree<T>, AddrError>
    where
        T: Clone,
    {
        let mut cur = self;
        for (i, b) in path.iter().enumerate() {
            match cur {
                ProcTree::Leaf(_) => {
                    return Err(AddrError::PathOutOfTree {
                        path: path.prefix(i + 1),
                    })
                }
                ProcTree::Node(l, r) => {
                    cur = match b {
                        Branch::Left => Arc::make_mut(l),
                        Branch::Right => Arc::make_mut(r),
                    };
                }
            }
        }
        Ok(cur)
    }
}

impl<T: fmt::Display> fmt::Display for ProcTree<T> {
    /// Renders the tree with explicit parentheses around every parallel
    /// composition, e.g. `((P0 | P1) | (P2 | (P3 | P4)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcTree::Leaf(v) => write!(f, "{v}"),
            ProcTree::Node(l, r) => write!(f, "({l} | {r})"),
        }
    }
}

/// Iterator over the `(path, value)` pairs of a tree's leaves, produced by
/// [`ProcTree::leaves`].
#[derive(Debug)]
pub struct Leaves<'a, T> {
    stack: Vec<(Path, &'a ProcTree<T>)>,
}

impl<'a, T> Iterator for Leaves<'a, T> {
    type Item = (Path, &'a T);

    fn next(&mut self) -> Option<(Path, &'a T)> {
        while let Some((path, tree)) = self.stack.pop() {
            match tree {
                ProcTree::Leaf(v) => return Some((path, v)),
                ProcTree::Node(l, r) => {
                    // Push right first so the left leaf pops first.
                    self.stack.push((path.child(Branch::Right), r));
                    self.stack.push((path.child(Branch::Left), l));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path literal")
    }

    fn fig1() -> ProcTree<&'static str> {
        ProcTree::node(
            ProcTree::node(ProcTree::leaf("P0"), ProcTree::leaf("P1")),
            ProcTree::node(
                ProcTree::leaf("P2"),
                ProcTree::node(ProcTree::leaf("P3"), ProcTree::leaf("P4")),
            ),
        )
    }

    #[test]
    fn figure_1_leaf_positions() {
        let t = fig1();
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.leaf_at(&p("00")).unwrap(), &"P0");
        assert_eq!(t.leaf_at(&p("01")).unwrap(), &"P1");
        assert_eq!(t.leaf_at(&p("10")).unwrap(), &"P2");
        assert_eq!(t.leaf_at(&p("110")).unwrap(), &"P3");
        assert_eq!(t.leaf_at(&p("111")).unwrap(), &"P4");
    }

    #[test]
    fn figure_1_relative_address() {
        let t = fig1();
        let l = t.address_between(&p("01"), &p("110")).unwrap();
        assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0");
    }

    #[test]
    fn leaves_iterate_left_to_right() {
        let t = fig1();
        let got: Vec<&str> = t.leaves().map(|(_, v)| *v).collect();
        assert_eq!(got, vec!["P0", "P1", "P2", "P3", "P4"]);
        let paths: Vec<String> = t.leaves().map(|(path, _)| path.to_bits()).collect();
        assert_eq!(paths, vec!["00", "01", "10", "110", "111"]);
    }

    #[test]
    fn leaf_lookup_errors() {
        let t = fig1();
        assert!(matches!(
            t.leaf_at(&p("0000")),
            Err(AddrError::PathOutOfTree { .. })
        ));
        // An internal node is not a leaf.
        assert!(matches!(
            t.leaf_at(&p("0")),
            Err(AddrError::PathOutOfTree { .. })
        ));
    }

    #[test]
    fn replace_grows_in_place_without_moving_others() {
        let mut t = fig1();
        // Unfold "P3" into (P3' | !P3): other leaves keep their paths.
        let old = t
            .replace(
                &p("110"),
                ProcTree::node(ProcTree::leaf("P3'"), ProcTree::leaf("!P3")),
            )
            .unwrap();
        assert_eq!(old, ProcTree::leaf("P3"));
        assert_eq!(t.leaf_at(&p("01")).unwrap(), &"P1");
        assert_eq!(t.leaf_at(&p("1100")).unwrap(), &"P3'");
        assert_eq!(t.leaf_at(&p("1101")).unwrap(), &"!P3");
        assert_eq!(t.leaf_count(), 6);
    }

    #[test]
    fn leaf_at_mut_updates_value() {
        let mut t = fig1();
        *t.leaf_at_mut(&p("10")).unwrap() = "Q2";
        assert_eq!(t.leaf_at(&p("10")).unwrap(), &"Q2");
    }

    #[test]
    fn map_preserves_shape() {
        let t = fig1();
        let mapped = t.map(|path, v| format!("{v}@{}", path.to_bits()));
        assert_eq!(mapped.leaf_at(&p("110")).unwrap(), "P3@110");
        assert_eq!(mapped.leaf_count(), t.leaf_count());
    }

    #[test]
    fn find_returns_leftmost_match() {
        let t = fig1();
        assert_eq!(t.find(|v| v.starts_with('P')), Some(p("00")));
        assert_eq!(t.find(|v| *v == "P4"), Some(p("111")));
        assert_eq!(t.find(|v| *v == "missing"), None);
    }

    #[test]
    fn display_shows_structure() {
        assert_eq!(fig1().to_string(), "((P0 | P1) | (P2 | (P3 | P4)))");
    }
}
