//! Worker membership: heartbeat-based failure detection.
//!
//! Workers register with the coordinator by sending `{"op":"join",
//! "addr":…}` and keep re-sending it on a timer — the join *is* the
//! heartbeat.  The coordinator marks a worker dead when its last
//! heartbeat is older than the configured window, or immediately when
//! a dial fails (a refused connection is faster evidence than a
//! missed timer).  Death is not eviction: a worker that heartbeats
//! again after being declared dead rejoins, and the coordinator's
//! join acknowledgement tells it so, which is the cue to warm its
//! cache shard from peers via [`crate::gossip`].

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct WorkerState {
    last_seen: Instant,
    alive: bool,
}

/// The coordinator's live view of its worker fleet.
#[derive(Debug, Default)]
pub struct Membership {
    workers: Mutex<HashMap<String, WorkerState>>,
}

impl Membership {
    /// An empty membership table.
    #[must_use]
    pub fn new() -> Membership {
        Membership::default()
    }

    /// Records a heartbeat from `addr`.  Returns `true` when this is a
    /// *rejoin* — the worker was previously unknown or declared dead —
    /// which is the caller's cue to suggest cache warming.
    pub fn heartbeat(&self, addr: &str) -> bool {
        let mut workers = self.workers.lock().expect("membership lock");
        let now = Instant::now();
        match workers.get_mut(addr) {
            Some(state) => {
                let rejoined = !state.alive;
                state.last_seen = now;
                state.alive = true;
                rejoined
            }
            None => {
                workers.insert(
                    addr.to_string(),
                    WorkerState {
                        last_seen: now,
                        alive: true,
                    },
                );
                true
            }
        }
    }

    /// Declares every worker whose last heartbeat is older than
    /// `fail_after` dead.  Returns the addresses that died in this
    /// sweep (for re-dispatch of their work units).
    pub fn sweep(&self, fail_after: Duration) -> Vec<String> {
        let mut workers = self.workers.lock().expect("membership lock");
        let now = Instant::now();
        let mut died = Vec::new();
        for (addr, state) in workers.iter_mut() {
            if state.alive && now.duration_since(state.last_seen) > fail_after {
                state.alive = false;
                died.push(addr.clone());
            }
        }
        died.sort();
        died
    }

    /// Declares `addr` dead right now (a failed dial).
    pub fn mark_dead(&self, addr: &str) {
        if let Some(state) = self
            .workers
            .lock()
            .expect("membership lock")
            .get_mut(addr)
        {
            state.alive = false;
        }
    }

    /// The alive worker addresses, sorted (a stable input for ring
    /// construction).
    #[must_use]
    pub fn alive(&self) -> Vec<String> {
        let workers = self.workers.lock().expect("membership lock");
        let mut alive: Vec<String> = workers
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(a, _)| a.clone())
            .collect();
        alive.sort();
        alive
    }

    /// `(alive, dead)` counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize) {
        let workers = self.workers.lock().expect("membership lock");
        let alive = workers.values().filter(|s| s.alive).count();
        (alive, workers.len() - alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_heartbeats_and_rejoins() {
        let m = Membership::new();
        assert!(m.heartbeat("w1"), "first contact is a join");
        assert!(!m.heartbeat("w1"), "repeat heartbeat is not a rejoin");
        m.mark_dead("w1");
        assert_eq!(m.alive(), Vec::<String>::new());
        assert!(m.heartbeat("w1"), "heartbeat after death is a rejoin");
        assert_eq!(m.alive(), ["w1"]);
    }

    #[test]
    fn sweep_kills_only_stale_workers() {
        let m = Membership::new();
        m.heartbeat("w1");
        m.heartbeat("w2");
        assert_eq!(m.sweep(Duration::from_secs(60)), Vec::<String>::new());
        std::thread::sleep(Duration::from_millis(30));
        m.heartbeat("w2"); // w2 stays fresh
        assert_eq!(m.sweep(Duration::from_millis(20)), ["w1"]);
        assert_eq!(m.alive(), ["w2"]);
        assert_eq!(m.counts(), (1, 1));
        // A second sweep reports nothing new.
        assert_eq!(m.sweep(Duration::from_millis(20)), Vec::<String>::new());
    }
}
