//! Diagnostics for the concrete syntax.

use std::error::Error;
use std::fmt;

use crate::Span;

/// An error produced while lexing or parsing the concrete syntax.
///
/// Carries a human-readable message and the [`Span`] of the offending
/// input; [`SyntaxError::render`] produces a caret diagnostic against the
/// original source.
///
/// # Example
///
/// ```
/// use spi_syntax::parse;
///
/// let err = parse("c<m").unwrap_err();
/// let msg = err.to_string();
/// assert!(msg.contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Builds an error with a message and the span it refers to.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> SyntaxError {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The span of the offending input.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders a multi-line caret diagnostic against the source text the
    /// input was parsed from:
    ///
    /// ```text
    /// error: expected `>`, found end of input
    ///   --> line 1, column 4
    ///    | c<m
    ///    |    ^
    /// ```
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let caret_len = self
            .span
            .slice(source)
            .chars()
            .count()
            .clamp(1, line_text.chars().count().saturating_sub(col - 1).max(1));
        let carets = "^".repeat(caret_len);
        format!(
            "error: {msg}\n  --> line {line}, column {col}\n   | {line_text}\n   | {caret_pad}{carets}",
            msg = self.message,
        )
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span() {
        let e = SyntaxError::new("expected `>`", Span::new(3, 4));
        assert_eq!(e.to_string(), "expected `>` at 3..4");
        assert_eq!(e.message(), "expected `>`");
        assert_eq!(e.span(), Span::new(3, 4));
    }

    #[test]
    fn render_points_at_the_problem() {
        let src = "c<m";
        let e = SyntaxError::new("expected `>`, found end of input", Span::point(3));
        let rendered = e.render(src);
        assert!(rendered.contains("line 1, column 4"));
        assert!(rendered.contains("c<m"));
        assert!(rendered.contains('^'));
    }

    #[test]
    fn render_handles_multiline_sources() {
        let src = "c<m>.\n[x = ]0";
        let e = SyntaxError::new("expected a term", Span::new(11, 12));
        let rendered = e.render(src);
        assert!(rendered.contains("line 2"));
        assert!(rendered.contains("[x = ]0"));
    }
}
