//! The multisession protocols of Section 5.2.
//!
//! * [`abstract_protocol`] — `Pm = m_startup(⋆, A, λ_B, B)`: each session
//!   instance of `B` hooks one instance of `A`, so authentication *and*
//!   freshness hold by construction (Proposition 3);
//! * [`shared_key`] — `Pm2 = (νK_AB)(!A2 | !B2)`: the single-session
//!   cipher protocol naively replicated.  It does **not** implement `Pm`:
//!   an attacker can replay `{M}K_AB` into a second session;
//! * [`challenge_response`] — `Pm3 = (νK_AB)(!A3 | !B3)`:
//!
//!   ```text
//!   Message 1   B → A : N
//!   Message 2   A → B : {M, N}K_AB
//!   ```
//!
//!   the nonce challenge restores freshness; `Pm3` securely implements
//!   `Pm` (Proposition 4).

use spi_syntax::builder::{bang, case, ch, ch_loc, enc, inp, mat, n, new, nil, out, par, v};
use spi_syntax::Process;

use crate::{m_startup, ProtocolError, StartupIndex};

/// The abstract multisession protocol `Pm`:
///
/// ```text
/// Pm = m_startup(⋆, A, λ_B, B)
/// A  = (νM) c̄⟨M⟩
/// B  = c_{λB}(z).B'(z)
/// ```
///
/// Each unfolded pair of instances shares its own binding of `λ_B`, so
/// instance `B#i` only ever receives from the instance of `A` it hooked
/// at startup: no cross-session replay is possible, by construction.
///
/// # Errors
///
/// Propagates [`ProtocolError::StartupNameClash`].
pub fn abstract_protocol(chan: &str, observe: &str) -> Result<Process, ProtocolError> {
    let a = new("m", out(ch(chan), n("m"), nil()));
    let b = inp(ch_loc(chan, "lamB"), "z", out(ch(observe), v("z"), nil()));
    m_startup(StartupIndex::Star, a, "lamB".into(), b)
}

/// The naively replicated cipher protocol `Pm2 = (νK_AB)(!A2 | !B2)`.
///
/// Secure for one session (Proposition 2), broken for many: the paper's
/// replay —
///
/// ```text
/// Message 1:a   A → E(B) : {M}K_AB    E intercepts
/// Message 2:a   E(A) → B : {M}K_AB    E pretending to be A
/// Message 2:b   E(A) → B : {M}K_AB    E pretending to be A
/// ```
///
/// makes two instances of `B` accept the *same* message, which `Pm` can
/// never do.
#[must_use]
pub fn shared_key(chan: &str, observe: &str) -> Process {
    let a2 = new("m", out(ch(chan), enc([n("m")], n("kAB")), nil()));
    let b2 = inp(
        ch(chan),
        "z",
        case(v("z"), ["w"], n("kAB"), out(ch(observe), v("w"), nil())),
    );
    new("kAB", par(bang(a2), bang(b2)))
}

/// The challenge-response protocol `Pm3 = (νK_AB)(!A3 | !B3)`:
///
/// ```text
/// A3 = (νM) c(ns). c̄⟨{M, ns}K_AB⟩
/// B3 = (νN) c̄⟨N⟩. c(x). case x of {z, w}K_AB in [w = N] B'(z)
/// ```
///
/// The fresh nonce `N` is the challenge; `B` only accepts a ciphertext
/// echoing its own nonce, so replays from other runs are rejected and
/// `Pm3` securely implements `Pm` (Proposition 4).
#[must_use]
pub fn challenge_response(chan: &str, observe: &str) -> Process {
    let a3 = new(
        "m",
        inp(
            ch(chan),
            "ns",
            out(ch(chan), enc([n("m"), v("ns")], n("kAB")), nil()),
        ),
    );
    let b3 = new(
        "nb",
        out(
            ch(chan),
            n("nb"),
            inp(
                ch(chan),
                "x",
                case(
                    v("x"),
                    ["z", "w"],
                    n("kAB"),
                    mat(v("w"), n("nb"), out(ch(observe), v("z"), nil())),
                ),
            ),
        ),
    );
    new("kAB", par(bang(a3), bang(b3)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    #[test]
    fn abstract_protocol_matches_the_paper() {
        let p = abstract_protocol("c", "observe").unwrap();
        let expected = parse("(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)").unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn shared_key_replicates_both_roles() {
        let p = shared_key("c", "observe");
        let expected =
            parse("(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)").unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn challenge_response_matches_the_paper() {
        let p = challenge_response("c", "observe");
        let expected = parse(
            "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | \
             !(^nb)c<nb>.c(x).case x of {z, w}kAB in [w = nb]observe<z>)",
        )
        .unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn all_protocols_are_closed() {
        assert!(abstract_protocol("c", "observe").unwrap().is_closed());
        assert!(shared_key("c", "observe").is_closed());
        assert!(challenge_response("c", "observe").is_closed());
    }
}
