//! Consistent-hash sharding of the result cache across workers.
//!
//! Each worker owns the arc of a hash ring between its virtual nodes
//! and their predecessors; a request's content digest lands on the
//! ring and is served by the first worker clockwise from it.  Virtual
//! nodes (many ring points per worker) keep the arcs balanced, and the
//! defining property — removing one worker moves *only that worker's
//! keys*, to their next-clockwise owners — is exactly what a fleet
//! needs when failure detection drops a node: every other worker's
//! cache shard stays hot.

use crate::digest::fnv64;

/// How many ring points each worker contributes.  64 keeps the
/// worst-case load imbalance across a handful of workers within a few
/// percent, at a ring of a few hundred entries — trivially searchable.
const VNODES: usize = 64;

/// FNV-1a mixes low bits well but avalanches poorly into the high
/// bits that dominate ring-position ordering, so similar inputs
/// (`addr#0`, `addr#1`, …) cluster.  A SplitMix64-style finalizer
/// spreads them over the whole ring.
fn ring_hash(text: &str) -> u64 {
    let mut z = fnv64(text);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An immutable hash ring over a set of worker addresses.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(ring position, worker index)` sorted by position.
    points: Vec<(u64, usize)>,
    /// The worker addresses, in the order given to [`Ring::new`].
    workers: Vec<String>,
}

impl Ring {
    /// Builds the ring for the given workers (duplicates are ignored).
    #[must_use]
    pub fn new<I, S>(workers: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut unique: Vec<String> = Vec::new();
        for w in workers {
            let w = w.into();
            if !unique.contains(&w) {
                unique.push(w);
            }
        }
        let mut points = Vec::with_capacity(unique.len() * VNODES);
        for (index, addr) in unique.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((ring_hash(&format!("{addr}#{vnode}")), index));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            workers: unique,
        }
    }

    /// Whether the ring has no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The number of distinct workers on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// The worker owning `key`, or `None` on an empty ring.
    #[must_use]
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.candidates(key).next()
    }

    /// Every distinct worker in ring order starting from `key`'s
    /// owner — the retry/fail-over sequence for that key.  The first
    /// candidate is the primary; each subsequent one is exactly the
    /// node the key would move to if everything before it died.
    pub fn candidates(&self, key: &str) -> impl Iterator<Item = &str> {
        let mut order: Vec<usize> = Vec::with_capacity(self.workers.len());
        if !self.points.is_empty() {
            let h = ring_hash(key);
            let start = self
                .points
                .partition_point(|&(pos, _)| pos < h)
                // partition_point == len means h is past the last
                // point: wrap to the first (the ring is circular).
                % self.points.len();
            for i in 0..self.points.len() {
                let (_, worker) = self.points[(start + i) % self.points.len()];
                if !order.contains(&worker) {
                    order.push(worker);
                    if order.len() == self.workers.len() {
                        break;
                    }
                }
            }
        }
        order.into_iter().map(|i| self.workers[i].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fleet(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("fnv:{i:016x}")).collect()
    }

    #[test]
    fn empty_and_singleton_rings() {
        let empty = Ring::new(Vec::<String>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.owner("k"), None);
        let one = Ring::new(["127.0.0.1:9000"]);
        assert_eq!(one.len(), 1);
        for k in keys(50) {
            assert_eq!(one.owner(&k), Some("127.0.0.1:9000"));
        }
    }

    #[test]
    fn routing_is_deterministic_and_order_insensitive() {
        let a = Ring::new(fleet(4));
        let mut reversed = fleet(4);
        reversed.reverse();
        let b = Ring::new(reversed);
        for k in keys(200) {
            assert_eq!(a.owner(&k), b.owner(&k), "{k}");
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(fleet(4));
        let mut per_worker: HashMap<&str, usize> = HashMap::new();
        let all = keys(4000);
        for k in &all {
            *per_worker.entry(ring.owner(k).unwrap()).or_default() += 1;
        }
        assert_eq!(per_worker.len(), 4, "every worker owns something");
        for (w, n) in &per_worker {
            // Perfect balance is 1000; virtual nodes keep the skew
            // well under 2x in either direction.
            assert!((500..=2000).contains(n), "{w} owns {n} of 4000");
        }
    }

    #[test]
    fn removing_a_worker_moves_only_its_keys() {
        let full = Ring::new(fleet(4));
        let dead = "127.0.0.1:9002";
        let survivors: Vec<String> = fleet(4).into_iter().filter(|w| w != dead).collect();
        let shrunk = Ring::new(survivors);
        for k in keys(1000) {
            let before = full.owner(&k).unwrap();
            let after = shrunk.owner(&k).unwrap();
            if before == dead {
                // Orphaned keys land on the next candidate in the full
                // ring's fail-over order — exactly what a coordinator
                // retrying past a dead node computes.
                let next = full.candidates(&k).nth(1).unwrap();
                assert_eq!(after, next, "{k}");
            } else {
                assert_eq!(after, before, "{k} moved although its owner lives");
            }
        }
    }

    #[test]
    fn candidates_enumerate_every_worker_once() {
        let ring = Ring::new(fleet(4));
        for k in keys(20) {
            let order: Vec<&str> = ring.candidates(&k).collect();
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "no duplicates in {order:?}");
        }
    }
}
