//! The protocol zoo: run every bundled protocol through the full
//! pipeline — honest completion, exploration under the most-general
//! intruder, secrecy of its long-term secrets — and print a summary
//! table.
//!
//! ```sh
//! cargo run --release --example protocol_zoo
//! ```

use spi_auth::protocols::compile::CompileOptions;
use spi_auth::protocols::{extra, multi, single};
use spi_auth::semantics::Barb;
use spi_auth::syntax::{Name, Process};
use spi_auth::verify::{check_secrecy, may_exhibit, ExploreOptions};
use spi_auth::Verifier;

struct Entry {
    name: &'static str,
    process: Process,
    roles: Vec<(&'static str, &'static str)>,
    sessions: u32,
    secrets: Vec<&'static str>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let single_opts = CompileOptions::default();
    let zoo = vec![
        Entry {
            name: "paper P (abstract)",
            process: single::abstract_protocol("c", "observe")?,
            roles: vec![("A", "0"), ("B", "1")],
            sessions: 1,
            secrets: vec![],
        },
        Entry {
            name: "paper P1 (plaintext)",
            process: single::plaintext("c", "observe"),
            roles: vec![("A", "0"), ("B", "1")],
            sessions: 1,
            secrets: vec!["m"],
        },
        Entry {
            name: "paper P2 (shared key)",
            process: single::shared_key("c", "observe"),
            roles: vec![("A", "0"), ("B", "1")],
            sessions: 1,
            secrets: vec!["m", "kAB"],
        },
        Entry {
            name: "paper Pm3 (challenge-response)",
            process: multi::challenge_response("c", "observe"),
            roles: vec![("A", "0"), ("B", "1")],
            sessions: 2,
            secrets: vec!["m", "kAB"],
        },
        Entry {
            name: "wide-mouthed frog",
            process: extra::wide_mouthed_frog(&single_opts)?,
            roles: vec![("A", "00"), ("B", "01"), ("S", "1")],
            sessions: 1,
            secrets: vec!["kas", "kbs", "kab", "m"],
        },
        Entry {
            name: "Needham-Schroeder SK",
            process: extra::needham_schroeder(&single_opts)?,
            roles: vec![("A", "00"), ("B", "01"), ("S", "1")],
            sessions: 1,
            secrets: vec!["kas", "kbs", "kab", "m"],
        },
        Entry {
            name: "Otway-Rees",
            process: extra::otway_rees(&single_opts)?,
            roles: vec![("A", "00"), ("B", "01"), ("S", "1")],
            sessions: 1,
            secrets: vec!["kas", "kbs", "kab", "m"],
        },
        Entry {
            name: "mutual exchange",
            process: extra::mutual_exchange(&single_opts)?,
            roles: vec![("A", "0"), ("B", "1")],
            sessions: 1,
            secrets: vec!["kab", "ma", "mb"],
        },
    ];

    println!(
        "{:<32} {:>9} {:>8} {:>8} {:>9}",
        "protocol", "completes", "states", "secrecy", "deadlocks"
    );
    let beta = Barb {
        chan: Name::new("observe"),
        output: true,
    };
    for entry in zoo {
        let completes = may_exhibit(&entry.process, &beta, &ExploreOptions::default())?.is_some();
        let verifier = Verifier::new(["c"])
            .roles(entry.roles.clone())
            .sessions(entry.sessions)
            .max_states(800_000);
        let lts = verifier.explore(&entry.process)?;
        let secrets: Vec<Name> = entry.secrets.iter().map(Name::new).collect();
        let secrecy = if secrets.is_empty() {
            "n/a".to_owned()
        } else if check_secrecy(&lts, &secrets).holds() {
            "holds".to_owned()
        } else {
            "LEAKS".to_owned()
        };
        println!(
            "{:<32} {:>9} {:>8} {:>8} {:>9}",
            entry.name,
            if completes { "yes" } else { "NO" },
            lts.stats.states,
            secrecy,
            lts.deadlocks().len(),
        );
    }
    Ok(())
}
