//! End-to-end fleet tests over real sockets: consistent-hash routing,
//! failure detection and re-dispatch, quorum degradation, snapshot
//! gossip, campaign work-unit stitching, and chaos byte-identity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use spi_server::client::Client;
use spi_server::coordinator::{coordinate, CoordinatorHandle, CoordinatorOptions};
use spi_server::gossip::pull_from;
use spi_server::protocol::JobRequest;
use spi_server::service::{serve, Engine, EngineOutcome, RunControl, ServerHandle, VerifierEngine};
use spi_server::ServerOptions;
use spi_verify::jsonlite::Json;

const P2: &str = "(^kAB)((^m) c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)";
const P_ABS: &str = "(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)";
const PM2: &str = "(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)";
const PM_ABS: &str = "(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)";

fn engine() -> Arc<dyn Engine> {
    Arc::new(VerifierEngine {
        explore_workers: Some(1),
    })
}

fn start_worker() -> ServerHandle {
    serve(
        engine(),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            ..ServerOptions::default()
        },
    )
    .expect("worker starts")
}

fn test_opts() -> CoordinatorOptions {
    CoordinatorOptions {
        addr: "127.0.0.1:0".into(),
        // Sweeper-driven death needs heartbeats the tests do not send;
        // keep it out of the way and rely on dial-failure detection.
        fail_after_ms: 60_000,
        heartbeat_ms: 50,
        connect_timeout_ms: 500,
        read_timeout_ms: 30_000,
        hedge_after_ms: 5_000,
        retry_rounds: 2,
        unit_size: 4,
        ..CoordinatorOptions::default()
    }
}

/// Starts a coordinator plus `n` workers, all joined.
fn start_fleet(
    n: usize,
    configure: impl FnOnce(&mut CoordinatorOptions),
) -> (CoordinatorHandle, Vec<ServerHandle>) {
    let mut opts = test_opts();
    configure(&mut opts);
    let coordinator = coordinate(engine(), opts).expect("coordinator starts");
    let workers: Vec<ServerHandle> = (0..n).map(|_| start_worker()).collect();
    let mut client = Client::connect(&coordinator.addr().to_string()).unwrap();
    for w in &workers {
        let line = format!(r#"{{"op":"join","addr":"{}"}}"#, w.addr());
        let resp = parsed(&client.roundtrip(&line).unwrap());
        assert_eq!(field(&resp, "status").as_str(), Some("ok"));
    }
    assert_eq!(coordinator.workers().len(), n);
    (coordinator, workers)
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response lacks {key:?}: {resp:?}"))
}

fn verify_line(concrete: &str, sessions: u32) -> String {
    format!(
        r#"{{"op":"verify","concrete":"{}","abstract":"{}","sessions":{sessions}}}"#,
        concrete.replace('\\', "\\\\"),
        P_ABS.replace('\\', "\\\\"),
    )
}

fn campaign_line() -> String {
    format!(
        r#"{{"op":"campaign","concrete":"{PM2}","abstract":"{PM_ABS}","sessions":2,"intruder":false,"faults_depth":2}}"#
    )
}

/// The reference bytes: the same request served by one standalone
/// worker process (the body encoders are shared, so this is also what
/// a direct `Verifier` run renders to).
fn single_node_body(line: &str) -> String {
    let worker = start_worker();
    let mut client = Client::connect(&worker.addr().to_string()).unwrap();
    let resp = parsed(&client.roundtrip(line).unwrap());
    assert_eq!(field(&resp, "status").as_str(), Some("ok"), "{resp:?}");
    let body = field(&resp, "body").render_compact();
    worker.join();
    body
}

#[test]
fn fleet_routes_by_digest_and_repeat_requests_hit_the_owners_cache() {
    let (coordinator, workers) = start_fleet(2, |_| {});
    let addr = coordinator.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let line = verify_line(P2, 1);
    let first = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&first, "status").as_str(), Some("ok"));
    assert_eq!(field(&first, "cached").as_bool(), Some(false));
    // The repeat routes to the same worker by digest: a cache hit.
    let second = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&second, "cached").as_bool(), Some(true));
    assert_eq!(field(&first, "body"), field(&second, "body"));

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    assert_eq!(field(body, "role").as_str(), Some("coordinator"));
    assert_eq!(field(body, "workers_alive").as_int(), Some(2));
    assert!(field(body, "routed").as_int().unwrap() >= 2);
    assert_eq!(field(body, "local_runs").as_int(), Some(0));

    coordinator.join();
    for w in workers {
        w.join();
    }
}

#[test]
fn killing_a_worker_reroutes_to_survivors() {
    let (coordinator, mut workers) = start_fleet(2, |_| {});
    let addr = coordinator.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let warm = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
    assert_eq!(field(&warm, "status").as_str(), Some("ok"));

    // Kill one worker outright.
    let victim = workers.remove(0);
    victim.join();

    // Every question still gets answered: requests owned by the dead
    // worker fail the dial, it is marked dead, and the ring's next
    // candidate takes over.
    for sessions in 1..=4 {
        let resp = parsed(&client.roundtrip(&verify_line(P2, sessions)).unwrap());
        assert_eq!(field(&resp, "status").as_str(), Some("ok"), "{resp:?}");
    }
    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    assert_eq!(field(body, "workers_alive").as_int(), Some(1), "{body:?}");
    assert_eq!(field(body, "workers_dead").as_int(), Some(1));

    coordinator.join();
    for w in workers {
        w.join();
    }
}

#[test]
fn quorum_loss_degrades_to_local_execution() {
    // No workers ever join: every job must still be answered, locally.
    let coordinator = coordinate(engine(), test_opts()).expect("coordinator starts");
    let mut client = Client::connect(&coordinator.addr().to_string()).unwrap();

    let resp = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
    assert_eq!(field(&resp, "status").as_str(), Some("ok"));
    assert_eq!(field(&resp, "via").as_str(), Some("local"));

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert!(field(field(&stats, "body"), "local_runs").as_int().unwrap() >= 1);

    coordinator.join();
}

#[test]
fn local_degradation_matches_fleet_bytes() {
    let reference = single_node_body(&verify_line(P2, 1));
    let coordinator = coordinate(engine(), test_opts()).expect("coordinator starts");
    let mut client = Client::connect(&coordinator.addr().to_string()).unwrap();
    let resp = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
    assert_eq!(field(&resp, "body").render_compact(), reference);
    coordinator.join();
}

#[test]
fn campaigns_split_into_units_and_stitch_back_byte_identically() {
    let reference = single_node_body(&campaign_line());

    let (coordinator, workers) = start_fleet(2, |o| o.unit_size = 4);
    let mut client = Client::connect(&coordinator.addr().to_string()).unwrap();
    let resp = parsed(&client.roundtrip(&campaign_line()).unwrap());
    assert_eq!(field(&resp, "status").as_str(), Some("ok"), "{resp:?}");
    assert_eq!(
        field(&resp, "via").as_str(),
        Some("fleet"),
        "14 schedules over unit_size 4 must fan out"
    );
    assert_eq!(
        field(&resp, "body").render_compact(),
        reference,
        "stitched unit reports must be byte-identical to one process"
    );

    // The units landed in worker caches: both workers saw work.
    let executions: u64 = workers.iter().map(ServerHandle::executions).sum();
    assert!(executions >= 4, "unit dispatch executed on the fleet");

    coordinator.join();
    for w in workers {
        w.join();
    }
}

#[test]
fn chaos_kill_mid_campaign_loses_nothing() {
    let verify_ref = single_node_body(&verify_line(P2, 1));
    let campaign_ref = single_node_body(&campaign_line());

    // Seeded chaos: the plan's first event is always an early worker
    // kill, so this exercises re-dispatch no matter the seed.
    let (coordinator, workers) = start_fleet(3, |o| {
        o.chaos = Some(0xC0FFEE);
        o.chaos_horizon = 12;
    });
    let addr = coordinator.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Enough requests to walk through the whole chaos plan.
    for round in 0..6 {
        let v = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
        assert_eq!(field(&v, "status").as_str(), Some("ok"), "round {round}");
        assert_eq!(
            field(&v, "body").render_compact(),
            verify_ref,
            "round {round}: chaos must never change verify bytes"
        );
        let c = parsed(&client.roundtrip(&campaign_line()).unwrap());
        assert_eq!(field(&c, "status").as_str(), Some("ok"), "round {round}");
        assert_eq!(
            field(&c, "body").render_compact(),
            campaign_ref,
            "round {round}: chaos must never change campaign bytes"
        );
    }

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    assert!(
        field(body, "workers_dead").as_int().unwrap() >= 1,
        "the chaos plan kills at least one worker: {body:?}"
    );
    assert!(body.get("chaos").is_some(), "stats document the plan");

    coordinator.join();
    for w in workers {
        // Chaos already drained some workers; join is idempotent.
        w.join();
    }
}

#[test]
fn gossip_warms_a_cold_worker_from_a_peer() {
    let warm = start_worker();
    let mut client = Client::connect(&warm.addr().to_string()).unwrap();
    let line = verify_line(P2, 1);
    let first = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&first, "cached").as_bool(), Some(false));

    // A cold worker pulls the peer's entries and absorbs them.
    let cold = start_worker();
    let entries = pull_from(
        &warm.addr().to_string(),
        Duration::from_millis(500),
        Duration::from_secs(5),
    )
    .expect("gossip pull succeeds");
    assert!(!entries.is_empty());
    cold.absorb(entries);

    // The very first request to the cold worker is already a hit.
    let mut cold_client = Client::connect(&cold.addr().to_string()).unwrap();
    let resp = parsed(&cold_client.roundtrip(&line).unwrap());
    assert_eq!(field(&resp, "cached").as_bool(), Some(true));
    assert_eq!(field(&resp, "body"), field(&first, "body"));
    assert_eq!(cold.executions(), 0, "warming replaced the exploration");

    warm.join();
    cold.join();
}

#[test]
fn gossip_between_disjoint_caches_converges_to_the_union() {
    let a = start_worker();
    let b = start_worker();
    let line_a = verify_line(P2, 1);
    let line_b = verify_line(P2, 2);
    let mut ca = Client::connect(&a.addr().to_string()).unwrap();
    let mut cb = Client::connect(&b.addr().to_string()).unwrap();
    let _ = ca.roundtrip(&line_a).unwrap();
    let _ = cb.roundtrip(&line_b).unwrap();

    // Exchange in both directions.
    let connect = Duration::from_millis(500);
    let read = Duration::from_secs(5);
    let from_b = pull_from(&b.addr().to_string(), connect, read).unwrap();
    a.absorb(from_b);
    let from_a = pull_from(&a.addr().to_string(), connect, read).unwrap();
    b.absorb(from_a);

    // Both hold both results: every repeat anywhere is a hit.
    let mut keys_a: Vec<String> = a.cache_entries().into_iter().map(|(k, _, _)| k).collect();
    let mut keys_b: Vec<String> = b.cache_entries().into_iter().map(|(k, _, _)| k).collect();
    keys_a.sort();
    keys_b.sort();
    assert_eq!(keys_a, keys_b, "caches converged");
    assert_eq!(keys_a.len(), 2, "the union holds both questions");
    for line in [&line_a, &line_b] {
        let ra = parsed(&ca.roundtrip(line).unwrap());
        let rb = parsed(&cb.roundtrip(line).unwrap());
        assert_eq!(field(&ra, "cached").as_bool(), Some(true));
        assert_eq!(field(&rb, "cached").as_bool(), Some(true));
        assert_eq!(field(&ra, "body"), field(&rb, "body"));
    }

    a.join();
    b.join();
}

#[test]
fn drain_handoff_keeps_warm_entries_after_the_worker_dies() {
    let (coordinator, mut workers) = start_fleet(2, |_| {});
    let addr = coordinator.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Warm the fleet: the answer lands in exactly one worker's shard.
    let line = verify_line(P2, 1);
    let first = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&first, "status").as_str(), Some("ok"));
    assert_eq!(field(&first, "cached").as_bool(), Some(false));

    // The owner drains: it announces `leave` carrying its cache shard
    // (exactly what `spi serve --join` does on drain), then dies.
    let owner_idx = workers
        .iter()
        .position(|w| !w.cache_entries().is_empty())
        .expect("one worker owns the warm entry");
    let owner = workers.remove(owner_idx);
    let leave = Json::Obj(vec![
        ("op".to_string(), Json::str("leave")),
        ("addr".to_string(), Json::str(owner.addr().to_string())),
        (
            "cache".to_string(),
            spi_server::gossip::gossip_body(&owner.cache_entries()),
        ),
    ])
    .render_compact();
    let resp = parsed(&client.roundtrip(&leave).unwrap());
    assert_eq!(field(&resp, "status").as_str(), Some("ok"), "{resp:?}");
    let body = field(&resp, "body");
    assert!(
        field(body, "handed_off").as_int().unwrap() >= 1,
        "the shard moved: {body:?}"
    );
    owner.join(); // drain-then-kill

    // The repeat must still be a cache hit — the surviving worker now
    // owns the digest AND holds the pushed entry, so nothing re-runs.
    let survivor = &workers[0];
    let before = survivor.executions();
    let again = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&again, "status").as_str(), Some("ok"), "{again:?}");
    assert_eq!(
        field(&again, "cached").as_bool(),
        Some(true),
        "drain-then-kill lost the warm entry: {again:?}"
    );
    assert_eq!(field(&again, "body"), field(&first, "body"));
    assert_eq!(survivor.executions(), before, "no re-exploration");

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    assert!(field(body, "handoff_entries").as_int().unwrap() >= 1);
    assert_eq!(field(body, "workers_alive").as_int(), Some(1));

    coordinator.join();
    for w in workers {
        w.join();
    }
}

#[test]
fn join_on_a_plain_worker_is_a_clean_error() {
    let worker = start_worker();
    let mut client = Client::connect(&worker.addr().to_string()).unwrap();
    let resp = parsed(
        &client
            .roundtrip(r#"{"op":"join","addr":"127.0.0.1:1"}"#)
            .unwrap(),
    );
    assert_eq!(field(&resp, "status").as_str(), Some("error"));
    let reason = field(&resp, "reason").as_str().unwrap();
    assert!(reason.contains("coordinator"), "{reason}");
    worker.join();
}

#[test]
fn rejoining_worker_is_told_to_warm_from_peers() {
    let (coordinator, workers) = start_fleet(2, |_| {});
    let mut client = Client::connect(&coordinator.addr().to_string()).unwrap();

    // A fresh join is a rejoin (first contact) and lists the peers.
    let line = r#"{"op":"join","addr":"127.0.0.1:1"}"#;
    let resp = parsed(&client.roundtrip(line).unwrap());
    let body = field(&resp, "body");
    assert_eq!(field(body, "rejoined").as_bool(), Some(true));
    assert_eq!(field(body, "peers").as_arr().unwrap().len(), 2);

    // A repeat heartbeat is not a rejoin.
    let resp = parsed(&client.roundtrip(line).unwrap());
    assert_eq!(
        field(field(&resp, "body"), "rejoined").as_bool(),
        Some(false)
    );

    coordinator.join();
    for w in workers {
        w.join();
    }
}

/// A slow counting engine: the coordinator's local fallback for the
/// cold-race test.  `runs` counts real executions so the test can
/// prove two racing clients funded exactly one exploration.
struct CountingEngine {
    delay: Duration,
    runs: AtomicU64,
}

impl Engine for CountingEngine {
    fn run(&self, _job: &JobRequest, _ctl: &RunControl) -> EngineOutcome {
        self.runs.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        EngineOutcome {
            body: Ok(Json::Obj(vec![("answer".into(), Json::Int(7))])),
            cacheable: true,
        }
    }
}

#[test]
fn concurrent_cold_requests_collapse_into_one_dispatch() {
    let engine = Arc::new(CountingEngine {
        delay: Duration::from_millis(400),
        runs: AtomicU64::new(0),
    });
    let coordinator = coordinate(Arc::clone(&engine) as Arc<dyn Engine>, test_opts())
        .expect("coordinator starts");
    let addr = coordinator.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Join a worker address nothing listens on: routing dials it,
    // fails, marks it dead, and degrades to the local engine — the
    // injected retry the flight must span.
    let resp = parsed(
        &client
            .roundtrip(r#"{"op":"join","addr":"127.0.0.1:1"}"#)
            .unwrap(),
    );
    assert_eq!(field(&resp, "status").as_str(), Some("ok"));

    let line = verify_line(P2, 1);
    let gate = Arc::new(Barrier::new(2));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let line = line.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                gate.wait();
                c.roundtrip(&line).unwrap()
            })
        })
        .collect();
    let replies: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    for r in &replies {
        let resp = parsed(r);
        assert_eq!(field(&resp, "status").as_str(), Some("ok"), "{resp:?}");
        assert_eq!(field(&resp, "via").as_str(), Some("local"));
    }
    assert_eq!(
        replies[0], replies[1],
        "the follower answers with the leader's bytes"
    );
    assert_eq!(
        engine.runs.load(Ordering::SeqCst),
        1,
        "two racing cold requests must fund exactly one exploration"
    );

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    assert_eq!(field(body, "flight_collapsed").as_int(), Some(1));
    assert!(field(body, "local_runs").as_int().unwrap() >= 1);
    coordinator.join();
}
