//! Measure fault-campaign throughput (schedules classified per second,
//! including counterexample shrinking) for the Pm2/Pm3 multi-session
//! instances and print one JSON record per configuration, suitable for
//! appending to `BENCH_campaign.json`.
//!
//! Run with `cargo run --release -p spi-bench --bin campaign_throughput -- <label> <workers> [engine]`.
//! The label tags the engine variant being measured; the harness always
//! goes through the public `Verifier::run_campaign` API so successive
//! generations are measured the same way.  `workers == 0` leaves the
//! verifier at its default (available parallelism).  The optional third
//! argument picks the decision procedure (`trace`, `bisim` or `both` —
//! `both` exercises the bisim-first early-reject fast path, and the
//! record carries the `early_rejects` counter).

use std::time::Instant;

use spi_auth::{Engine, Verifier};
use spi_protocols::multi;
use spi_syntax::Process;

const RUNS: usize = 5;
const DEPTH: usize = 2;

/// Median campaign wall-clock plus the (engine-invariant) outcome tally
/// and the early-reject count.
fn median_ms(
    verifier: &Verifier,
    concrete: &Process,
    spec: &Process,
) -> (f64, usize, (usize, usize, usize), u64) {
    let opts = verifier.campaign_options(DEPTH);
    // Warm-up run (also gives us the schedule count and the tally).
    let report = verifier
        .run_campaign(concrete, spec, &opts)
        .expect("campaign runs");
    let enumerated = report.enumerated;
    let tally = report.tally();
    let early_rejects = report.early_rejects;
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(
                verifier
                    .run_campaign(concrete, spec, &opts)
                    .expect("campaign runs"),
            );
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (samples[samples.len() / 2], enumerated, tally, early_rejects)
}

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unlabelled".to_string());
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    let engine = std::env::args()
        .nth(3)
        .map(|m| Engine::parse(&m).expect("engine: trace|bisim|both"))
        .unwrap_or_default();
    let spec = multi::abstract_protocol("c", "observe").expect("well-formed");
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    let instances: [(&str, &Process); 2] = [("pm2_naive", &pm2), ("pm3_nonce", &pm3)];
    for (name, concrete) in instances {
        let verifier = configure(
            Verifier::new(["c"]).sessions(2).no_intruder().engine(engine),
            workers,
        );
        let (ms, enumerated, (attacks, survive, inconclusive), early_rejects) =
            median_ms(&verifier, concrete, &spec);
        let per_sec = enumerated as f64 / (ms / 1e3);
        println!(
            "{{\"engine\": \"{label}\", \"instance\": \"{name}\", \"depth\": {DEPTH}, \
             \"decision_engine\": \"{}\", \"schedules\": {enumerated}, \"attacks\": {attacks}, \
             \"survive\": {survive}, \"inconclusive\": {inconclusive}, \
             \"early_rejects\": {early_rejects}, \"median_ms\": {ms:.2}, \
             \"schedules_per_sec\": {per_sec:.1}, \"runs\": {RUNS}}}",
            engine.mode()
        );
    }
}

fn configure(verifier: Verifier, workers: usize) -> Verifier {
    if workers == 0 {
        verifier
    } else {
        verifier.workers(workers)
    }
}
