//! Deterministic random walks — scheduling one run out of many.
//!
//! Explorers enumerate *all* interleavings; a walk picks one, pseudo-
//! randomly but reproducibly (seeded xorshift, no external RNG), which is
//! what demos, fuzzing loops and long-run smoke tests want.

use crate::{Action, Config, MachineError, StepInfo};

/// A tiny xorshift64* generator — deterministic, dependency-free.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        // Avoid the all-zero fixed point.
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The record of one walk: the steps taken, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// The steps, in execution order.
    pub steps: Vec<StepInfo>,
    /// `true` when the walk stopped because nothing was enabled (rather
    /// than hitting the step budget).
    pub quiescent: bool,
}

impl Config {
    /// Performs up to `max_steps` pseudo-random steps (seeded, fully
    /// reproducible), unfolding replications up to `unfold_bound` copies.
    ///
    /// # Errors
    ///
    /// Propagates machine errors — which, for enabled actions, indicate a
    /// bug (see the property tests).
    ///
    /// # Example
    ///
    /// ```
    /// use spi_semantics::Config;
    /// use spi_syntax::parse;
    ///
    /// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
    /// let mut cfg = Config::from_process(&p)?;
    /// let walk = cfg.random_walk(42, 16, 1)?;
    /// assert_eq!(walk.steps.len(), 1, "one communication, then quiescent");
    /// assert!(walk.quiescent);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn random_walk(
        &mut self,
        seed: u64,
        max_steps: usize,
        unfold_bound: u32,
    ) -> Result<Walk, MachineError> {
        let mut rng = XorShift::new(seed);
        let mut steps = Vec::new();
        for _ in 0..max_steps {
            let actions = self.enabled(unfold_bound);
            if actions.is_empty() {
                return Ok(Walk {
                    steps,
                    quiescent: true,
                });
            }
            // Prefer communications over unfoldings 3:1 so walks of
            // replicated systems make progress instead of spawning
            // copies forever.
            let comms: Vec<&Action> = actions
                .iter()
                .filter(|a| matches!(a, Action::Comm { .. }))
                .collect();
            let action = if !comms.is_empty() && rng.pick(4) != 0 {
                comms[rng.pick(comms.len())].clone()
            } else {
                actions[rng.pick(actions.len())].clone()
            };
            steps.push(self.fire(&action)?);
        }
        Ok(Walk {
            steps,
            quiescent: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    #[test]
    fn walks_are_reproducible() {
        let src = "(^s)(!s<s>.(^m)c<m> | !s(x).c(z).observe<z>)";
        let a = cfg(src).random_walk(7, 24, 2).unwrap();
        let b = cfg(src).random_walk(7, 24, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_may_differ() {
        // A system with real scheduling choices.
        let src = "(c<m> | c<n>) | (c(x).o<x> | c(y).o<y>)";
        let walks: Vec<Walk> = (0..16)
            .map(|seed| cfg(src).random_walk(seed, 8, 0).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<String> =
            walks.iter().map(|w| format!("{w:?}")).collect();
        assert!(distinct.len() > 1, "some seeds schedule differently");
    }

    #[test]
    fn walks_reach_quiescence_on_finite_systems() {
        let mut c = cfg("(^m)(c<m> | c(x).observe<x>)");
        let walk = c.random_walk(1, 100, 0).unwrap();
        assert!(walk.quiescent);
        assert_eq!(walk.steps.len(), 1);
        // The observe output remains as a barb, not a step (no partner).
        assert!(c.barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn replicated_systems_keep_walking_until_the_budget() {
        let mut c = cfg("(^s)(!s<s> | !s(x))");
        let walk = c.random_walk(3, 20, u32::MAX).unwrap();
        assert!(!walk.quiescent, "replication never exhausts");
        assert_eq!(walk.steps.len(), 20);
    }

    #[test]
    fn walks_prefer_progress_over_unfolding() {
        // Each communication consumes one copy per side, so the steady
        // state is two unfolds per communication; the bias keeps the walk
        // near that upper bound instead of unfolding forever.
        let mut c = cfg("!c<m> | !c(x)");
        let walk = c.random_walk(11, 40, u32::MAX).unwrap();
        let comms = walk
            .steps
            .iter()
            .filter(|s| matches!(s, StepInfo::Comm(_)))
            .count();
        assert!(
            comms >= walk.steps.len() / 5,
            "{comms}/{}",
            walk.steps.len()
        );
    }
}
