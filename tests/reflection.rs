//! Experiments E9–E10 — beyond the paper: the reflection attack it flags
//! as future work ("if A and B could play both the two roles in parallel
//! sessions, then the protocol above would suffer of a well-known
//! reflection attack"), found mechanically, and its classic repair
//! verified.

use spi_auth_repro::auth::{Verdict, Verifier};
use spi_auth_repro::protocols::reflection;

fn verifier() -> Verifier {
    Verifier::new(["c"])
        .sessions(1)
        .roles([
            ("A.resp", "00"),
            ("A.chal", "01"),
            ("B.resp", "10"),
            ("B.chal", "11"),
        ])
        .max_states(400_000)
}

#[test]
fn e9_bidirectional_pm3_suffers_the_reflection_attack() {
    let concrete = reflection::bidirectional_challenge_response("c", "oa", "ob");
    let spec = reflection::bidirectional_abstract("c", "oa", "ob").unwrap();
    match verifier().check(&concrete, &spec).unwrap().verdict {
        Verdict::Attack(attack) => {
            // The distinguishing observation: a party reveals, as
            // authenticated-from-the-peer, a message created on its own
            // side of the tree.
            let text = attack.narration.join("\n");
            assert!(
                attack
                    .trace
                    .iter()
                    .any(|e| (e.starts_with("oa!") && e.contains("@0"))
                        || (e.starts_with("ob!") && e.contains("@1"))),
                "a reflected origin appears: {:?}\n{text}",
                attack.trace
            );
        }
        other => {
            panic!("the bidirectional challenge-response must be reflectable, got {other:?}")
        }
    }
}

#[test]
fn e10_identity_tags_repair_the_reflection() {
    let concrete = reflection::bidirectional_tagged("c", "oa", "ob");
    let spec = reflection::bidirectional_abstract("c", "oa", "ob").unwrap();
    let report = verifier().check(&concrete, &spec).unwrap();
    assert!(
        matches!(report.verdict, Verdict::SecurelyImplements),
        "{report:?}"
    );
}

#[test]
fn the_vulnerable_and_fixed_systems_differ_only_in_tags() {
    // Sanity: the repair is minimal — the fixed system is strictly the
    // vulnerable one with identity components added.
    let vulnerable = reflection::bidirectional_challenge_response("c", "oa", "ob").to_string();
    let fixed = reflection::bidirectional_tagged("c", "oa", "ob").to_string();
    assert_ne!(vulnerable, fixed);
    assert!(fixed.contains("ida") && fixed.contains("idb"));
    assert!(!vulnerable.contains("ida"));
}
