//! Recursive-descent parser for the concrete syntax.

use spi_addr::{Path, RelAddr};

use crate::lex::{Lexer, Token, TokenKind};
use crate::{AddrSide, ChanIndex, Channel, LocVar, Name, Process, Span, SyntaxError, Term, Var};

/// Parses a process from its concrete syntax.
///
/// See the [crate documentation](crate) for the grammar.  Identifiers are
/// resolved to [`Var`]s when bound by an enclosing input or decryption and
/// to [`Name`]s otherwise, exactly as in the paper's convention that
/// `x, y, z, w` are variables and other letters names.
///
/// # Errors
///
/// Returns a [`SyntaxError`] with the span of the first offending token.
///
/// # Example
///
/// ```
/// use spi_syntax::parse;
///
/// // B2 of the paper: c(z). case z of {w}K in B'(w), with the
/// // continuation modelled as an output on `observe`.
/// let b2 = parse("c(z).case z of {w}kAB in observe<w>")?;
/// assert!(b2.is_closed());
/// # Ok::<(), spi_syntax::SyntaxError>(())
/// ```
pub fn parse(src: &str) -> Result<Process, SyntaxError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(tokens);
    let proc = p.par()?;
    p.expect_eof()?;
    Ok(proc)
}

/// Parses a single term from its concrete syntax.
///
/// Identifiers resolve to free [`Name`]s (there is no enclosing binder).
///
/// # Errors
///
/// Returns a [`SyntaxError`] with the span of the first offending token.
///
/// # Example
///
/// ```
/// use spi_syntax::parse_term;
///
/// let t = parse_term("{m, n}k")?;
/// assert_eq!(t.to_string(), "{m, n}k");
/// # Ok::<(), spi_syntax::SyntaxError>(())
/// ```
pub fn parse_term(src: &str) -> Result<Term, SyntaxError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(tokens);
    let term = p.term()?;
    p.expect_eof()?;
    Ok(term)
}

/// Which sort a scope entry binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinderSort {
    Var,
    Name,
}

#[derive(Debug)]
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Innermost binder last; identifiers resolve against this stack.
    scopes: Vec<(String, BinderSort)>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            scopes: Vec::new(),
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SyntaxError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_eof(&self) -> Result<(), SyntaxError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, expected: &str) -> SyntaxError {
        let t = self.peek();
        SyntaxError::new(
            format!("expected {expected}, found {}", t.kind.describe()),
            t.span,
        )
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.peek().span;
                self.bump();
                Ok((s, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn resolve(&self, ident: &str) -> Term {
        for (bound, sort) in self.scopes.iter().rev() {
            if bound == ident {
                return match sort {
                    BinderSort::Var => Term::var(ident),
                    BinderSort::Name => Term::name(ident),
                };
            }
        }
        Term::name(ident)
    }

    // ---- processes ------------------------------------------------------

    /// `par ::= prefix ('|' prefix)*`, left-associated.
    fn par(&mut self) -> Result<Process, SyntaxError> {
        let mut acc = self.prefix()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.prefix()?;
            acc = Process::par(acc, rhs);
        }
        Ok(acc)
    }

    fn prefix(&mut self) -> Result<Process, SyntaxError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) if n == "0" => {
                self.bump();
                Ok(Process::Nil)
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Process::bang(self.prefix()?))
            }
            TokenKind::LParen => {
                if self.peek2().kind == TokenKind::Caret {
                    self.restriction()
                } else {
                    self.bump();
                    let inner = self.par()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(inner)
                }
            }
            TokenKind::LBracket => self.matching(),
            TokenKind::Ident(ref kw) if kw == "case" => self.case(),
            TokenKind::Ident(ref kw) if kw == "let" => self.split(),
            TokenKind::Ident(_) => self.io(),
            _ => Err(self.unexpected("a process")),
        }
    }

    /// `'(' '^' ident (',' ident)* ')' prefix`
    fn restriction(&mut self) -> Result<Process, SyntaxError> {
        self.expect(&TokenKind::LParen)?;
        self.expect(&TokenKind::Caret)?;
        let mut names = Vec::new();
        loop {
            let (n, _) = self.ident("a restricted name")?;
            names.push(n);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let depth = self.scopes.len();
        for n in &names {
            self.scopes.push((n.clone(), BinderSort::Name));
        }
        let body = self.prefix()?;
        self.scopes.truncate(depth);
        Ok(Process::restrict_all(
            names.into_iter().map(Name::new),
            body,
        ))
    }

    /// `'[' term ('=' term | '~' addrside) ']' prefix`
    fn matching(&mut self) -> Result<Process, SyntaxError> {
        self.expect(&TokenKind::LBracket)?;
        let left = self.term()?;
        if self.eat(&TokenKind::Eq) {
            let right = self.term()?;
            self.expect(&TokenKind::RBracket)?;
            Ok(Process::Match(left, right, Box::new(self.prefix()?)))
        } else if self.eat(&TokenKind::Tilde) {
            let side = if self.peek().kind == TokenKind::At {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let addr = self.rel_addr()?;
                self.expect(&TokenKind::RParen)?;
                AddrSide::Lit(addr)
            } else {
                AddrSide::Term(Box::new(self.term()?))
            };
            self.expect(&TokenKind::RBracket)?;
            Ok(Process::AddrMatch(left, side, Box::new(self.prefix()?)))
        } else {
            Err(self.unexpected("`=` or `~`"))
        }
    }

    /// `'let' '(' ident ',' ident ')' '=' term 'in' prefix`
    fn split(&mut self) -> Result<Process, SyntaxError> {
        self.bump(); // `let`
        self.expect(&TokenKind::LParen)?;
        let (fst, _) = self.ident("the first projection binder")?;
        self.expect(&TokenKind::Comma)?;
        let (snd, _) = self.ident("the second projection binder")?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Eq)?;
        let pair = self.term()?;
        let (kw, kw_span) = self.ident("`in`")?;
        if kw != "in" {
            return Err(SyntaxError::new("expected `in`", kw_span));
        }
        let depth = self.scopes.len();
        self.scopes.push((fst.clone(), BinderSort::Var));
        self.scopes.push((snd.clone(), BinderSort::Var));
        let body = self.prefix()?;
        self.scopes.truncate(depth);
        Ok(Process::Split {
            pair,
            fst: Var::new(fst),
            snd: Var::new(snd),
            body: Box::new(body),
        })
    }

    /// `'case' term 'of' '{' ident (',' ident)* '}' simpleterm 'in' prefix`
    fn case(&mut self) -> Result<Process, SyntaxError> {
        self.bump(); // `case`
        let scrutinee = self.term()?;
        let (of, of_span) = self.ident("`of`")?;
        if of != "of" {
            return Err(SyntaxError::new("expected `of`", of_span));
        }
        self.expect(&TokenKind::LBrace)?;
        let mut binders = Vec::new();
        loop {
            let (x, _) = self.ident("a decryption binder")?;
            binders.push(x);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        let key = self.simple_term()?;
        let (kw, kw_span) = self.ident("`in`")?;
        if kw != "in" {
            return Err(SyntaxError::new("expected `in`", kw_span));
        }
        let depth = self.scopes.len();
        for b in &binders {
            self.scopes.push((b.clone(), BinderSort::Var));
        }
        let body = self.prefix()?;
        self.scopes.truncate(depth);
        Ok(Process::Case {
            scrutinee,
            binders: binders.into_iter().map(Var::new).collect(),
            key,
            body: Box::new(body),
        })
    }

    /// Output `ident index? '<' term '>' cont` or input
    /// `ident index? '(' ident ')' cont`.
    fn io(&mut self) -> Result<Process, SyntaxError> {
        let (subject, _) = self.ident("a channel")?;
        let subject = self.resolve(&subject);
        let index = self.chan_index()?;
        let channel = Channel::with_index(subject, index);
        match self.peek().kind {
            TokenKind::Lt => {
                self.bump();
                let payload = self.term()?;
                self.expect(&TokenKind::Gt)?;
                let cont = self.continuation()?;
                Ok(Process::Output(channel, payload, Box::new(cont)))
            }
            TokenKind::LParen => {
                self.bump();
                let (x, _) = self.ident("an input binder")?;
                self.expect(&TokenKind::RParen)?;
                self.scopes.push((x.clone(), BinderSort::Var));
                let cont = self.continuation()?;
                self.scopes.pop();
                Ok(Process::Input(channel, Var::new(x), Box::new(cont)))
            }
            _ => Err(self.unexpected("`<` (output) or `(` (input)")),
        }
    }

    /// `'@' ( '(' addr ')' | ident )` or nothing.
    fn chan_index(&mut self) -> Result<ChanIndex, SyntaxError> {
        if !self.eat(&TokenKind::At) {
            return Ok(ChanIndex::Plain);
        }
        if self.eat(&TokenKind::LParen) {
            let addr = self.rel_addr()?;
            self.expect(&TokenKind::RParen)?;
            Ok(ChanIndex::At(addr))
        } else {
            let (lam, _) = self.ident("a location variable or `(`")?;
            Ok(ChanIndex::Loc(LocVar::new(lam)))
        }
    }

    fn continuation(&mut self) -> Result<Process, SyntaxError> {
        if self.eat(&TokenKind::Dot) {
            self.prefix()
        } else {
            Ok(Process::Nil)
        }
    }

    // ---- addresses ------------------------------------------------------

    /// One component of an address literal: a bit string or `e` for ε.
    fn path_bits(&mut self) -> Result<Path, SyntaxError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Number(bits) => {
                let parsed = bits
                    .parse::<Path>()
                    .map_err(|e| SyntaxError::new(e.to_string(), t.span))?;
                self.bump();
                Ok(parsed)
            }
            TokenKind::Ident(s) if s == "e" => {
                self.bump();
                Ok(Path::root())
            }
            _ => Err(self.unexpected("a bit string or `e`")),
        }
    }

    /// `addr ::= bits '.' bits`
    fn rel_addr(&mut self) -> Result<RelAddr, SyntaxError> {
        let start = self.peek().span;
        let observer = self.path_bits()?;
        self.expect(&TokenKind::Dot)?;
        let target = self.path_bits()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        RelAddr::new(observer, target)
            .map_err(|e| SyntaxError::new(e.to_string(), start.merge(end)))
    }

    // ---- terms ----------------------------------------------------------

    fn term(&mut self) -> Result<Term, SyntaxError> {
        self.simple_term()
    }

    fn simple_term(&mut self) -> Result<Term, SyntaxError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(self.resolve(&s))
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.term()?;
                if self.peek().kind == TokenKind::Comma {
                    let mut rest = Vec::new();
                    while self.eat(&TokenKind::Comma) {
                        rest.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    // An n-ary tuple is sugar for right-nested pairs.
                    Ok(
                        match rest.into_iter().rev().reduce(|acc, t| Term::pair(t, acc)) {
                            Some(tail) => Term::pair(first, tail),
                            None => first,
                        },
                    )
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBrace => {
                self.bump();
                let mut body = vec![self.term()?];
                while self.eat(&TokenKind::Comma) {
                    body.push(self.term()?);
                }
                self.expect(&TokenKind::RBrace)?;
                let key = self.simple_term()?;
                Ok(Term::enc(body, key))
            }
            TokenKind::LBracket => {
                self.bump();
                let addr = self.rel_addr()?;
                self.expect(&TokenKind::RBracket)?;
                let inner = self.simple_term()?;
                Ok(Term::located(addr, inner))
            }
            _ => Err(self.unexpected("a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nil_and_bang() {
        assert_eq!(parse("0").unwrap(), Process::Nil);
        assert_eq!(parse("!0").unwrap(), Process::bang(Process::Nil));
    }

    #[test]
    fn parses_output_and_input() {
        let p = parse("c<m>.d(x)").unwrap();
        match p {
            Process::Output(ch, payload, cont) => {
                assert_eq!(ch.subject, Term::name("c"));
                assert_eq!(payload, Term::name("m"));
                assert!(matches!(*cont, Process::Input(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implicit_nil_continuations() {
        assert_eq!(
            parse("c<m>").unwrap(),
            Process::output(Term::name("c"), Term::name("m"), Process::Nil)
        );
    }

    #[test]
    fn input_binds_variable_in_continuation() {
        let p = parse("c(x).d<x>").unwrap();
        match p {
            Process::Input(_, x, cont) => {
                assert_eq!(x, Var::new("x"));
                match *cont {
                    Process::Output(_, payload, _) => assert_eq!(payload, Term::var("x")),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_identifiers_are_names() {
        let p = parse("d<x>").unwrap();
        match p {
            Process::Output(_, payload, _) => assert_eq!(payload, Term::name("x")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallel_is_left_associative() {
        let p = parse("a<m> | b<m> | c<m>").unwrap();
        match p {
            Process::Par(l, r) => {
                assert!(matches!(*l, Process::Par(_, _)));
                assert!(matches!(*r, Process::Output(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_grouping_overrides_associativity() {
        let p = parse("a<m> | (b<m> | c<m>)").unwrap();
        match p {
            Process::Par(l, r) => {
                assert!(matches!(*l, Process::Output(_, _, _)));
                assert!(matches!(*r, Process::Par(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn restriction_binds_names_and_allows_lists() {
        let p = parse("(^m, n) c<(m, n)>").unwrap();
        let free = p.free_names();
        assert!(free.contains("c"));
        assert!(!free.contains("m"));
        assert!(!free.contains("n"));
    }

    #[test]
    fn parses_match_and_addr_match() {
        let p = parse("[x = m] 0").unwrap();
        assert!(matches!(p, Process::Match(_, _, _)));
        let p = parse("[x ~ y] 0").unwrap();
        assert!(matches!(p, Process::AddrMatch(_, AddrSide::Term(_), _)));
        let p = parse("[x ~ @(10.0)] 0").unwrap();
        match p {
            Process::AddrMatch(_, AddrSide::Lit(l), _) => {
                assert_eq!(l.to_string(), "‖1‖0•‖0");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_case_with_multiple_binders() {
        let p = parse("case z of {x, w}kAB in [w = n] observe<x>").unwrap();
        match &p {
            Process::Case { binders, key, .. } => {
                assert_eq!(binders.len(), 2);
                assert_eq!(key, &Term::name("kAB"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // z has no enclosing binder, so it resolves to a free name; the
        // decryption binders x and w are variables.
        assert!(p.free_vars().is_empty());
        assert!(p.free_names().contains("z"));
    }

    #[test]
    fn parses_pair_splitting() {
        let p = parse("c(x).let (y, z) = x in d<(z, y)>").unwrap();
        match &p {
            Process::Input(_, _, cont) => match cont.as_ref() {
                Process::Split { fst, snd, body, .. } => {
                    assert_eq!(fst, &Var::new("y"));
                    assert_eq!(snd, &Var::new("z"));
                    assert!(matches!(**body, Process::Output(_, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.is_closed());
    }

    #[test]
    fn split_binders_shadow() {
        // The inner y is the split binder, not the input's.
        let p = parse("c(y).let (y, z) = y in d<y>").unwrap();
        assert!(p.is_closed());
    }

    #[test]
    fn parses_localized_channels() {
        let p = parse("c@lam(x).c@lam<x>").unwrap();
        match &p {
            Process::Input(ch, _, _) => {
                assert_eq!(ch.index, ChanIndex::Loc(LocVar::new("lam")));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse("c@(01.110)<m>").unwrap();
        match &p {
            Process::Output(ch, _, _) => match &ch.index {
                ChanIndex::At(l) => assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0"),
                other => panic!("unexpected index {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_located_term_literals() {
        let p = parse("[x = [01.110]d] 0").unwrap();
        match p {
            Process::Match(_, rhs, _) => {
                assert_eq!(rhs.location().unwrap().to_string(), "‖0‖1•‖1‖1‖0");
                assert_eq!(rhs.unlocated(), &Term::name("d"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_terms() {
        assert_eq!(
            parse_term("(m, n)").unwrap(),
            Term::pair(Term::name("m"), Term::name("n"))
        );
        assert_eq!(
            parse_term("(a, b, c)").unwrap(),
            Term::pair(
                Term::name("a"),
                Term::pair(Term::name("b"), Term::name("c"))
            )
        );
        assert_eq!(
            parse_term("{m, n}k").unwrap(),
            Term::enc(vec![Term::name("m"), Term::name("n")], Term::name("k"))
        );
        // Nested encryption keys.
        assert_eq!(
            parse_term("{m}{k}h").unwrap(),
            Term::enc(
                vec![Term::name("m")],
                Term::enc(vec![Term::name("k")], Term::name("h"))
            )
        );
    }

    #[test]
    fn empty_address_components() {
        let p = parse("[x ~ @(e.00)] 0").unwrap();
        match p {
            Process::AddrMatch(_, AddrSide::Lit(l), _) => {
                assert!(l.observer().is_empty());
                assert_eq!(l.target().to_bits(), "00");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_spans_are_helpful() {
        let err = parse("c<m").unwrap_err();
        assert!(err.to_string().contains("expected `>`"));
        let err = parse("case z of {x}k 0").unwrap_err();
        assert!(err.to_string().contains("expected `in`"), "{err}");
        let err = parse("[x ~ @(02.1)] 0").unwrap_err();
        assert!(err.to_string().contains("invalid path character"));
        let err = parse("(^m) c<m> trailing").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn non_minimal_address_literals_are_rejected() {
        let err = parse("c@(00.01)<m>").unwrap_err();
        assert!(err.to_string().contains("not minimal"));
    }

    #[test]
    fn paper_example_1_parses() {
        // S = !P | Q from Section 2.
        let s = parse("!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))").unwrap();
        match s {
            Process::Par(l, _) => assert!(matches!(*l, Process::Bang(_))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
