//! Free names, free variables and free location variables.

use std::collections::BTreeSet;

use crate::{AddrSide, ChanIndex, Channel, LocVar, Name, Process, Term, Var};

impl Term {
    /// The set of names occurring in the term.  Terms have no name
    /// binders, so every occurrence is free.
    #[must_use]
    pub fn free_names(&self) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        self.collect_names(&mut out);
        out
    }

    pub(crate) fn collect_names(&self, out: &mut BTreeSet<Name>) {
        match self {
            Term::Name(n) => {
                out.insert(n.clone());
            }
            Term::Var(_) => {}
            Term::Pair(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Term::Enc { body, key } => {
                for t in body {
                    t.collect_names(out);
                }
                key.collect_names(out);
            }
            Term::Located { inner, .. } => inner.collect_names(out),
        }
    }

    /// The set of variables occurring in the term.  Terms have no
    /// variable binders, so every occurrence is free.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Name(_) => {}
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Pair(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Enc { body, key } => {
                for t in body {
                    t.collect_vars(out);
                }
                key.collect_vars(out);
            }
            Term::Located { inner, .. } => inner.collect_vars(out),
        }
    }
}

impl Channel {
    fn collect_names(&self, out: &mut BTreeSet<Name>) {
        self.subject.collect_names(out);
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        self.subject.collect_vars(out);
    }

    fn collect_locs(&self, out: &mut BTreeSet<LocVar>) {
        if let ChanIndex::Loc(l) = &self.index {
            out.insert(l.clone());
        }
    }
}

impl Process {
    /// The set of free names of the process: every name occurrence not in
    /// the scope of a restriction binding it.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::parse;
    ///
    /// let p = parse("(^m) c<{m}k>")?;
    /// let free = p.free_names();
    /// assert!(free.contains("c") && free.contains("k"));
    /// assert!(!free.contains("m"));
    /// # Ok::<(), spi_syntax::SyntaxError>(())
    /// ```
    #[must_use]
    pub fn free_names(&self) -> BTreeSet<Name> {
        fn go(p: &Process, bound: &mut Vec<Name>, out: &mut BTreeSet<Name>) {
            let add = |t: &Term, bound: &Vec<Name>, out: &mut BTreeSet<Name>| {
                let mut all = BTreeSet::new();
                t.collect_names(&mut all);
                for n in all {
                    if !bound.contains(&n) {
                        out.insert(n);
                    }
                }
            };
            match p {
                Process::Nil => {}
                Process::Output(ch, payload, cont) => {
                    let mut chn = BTreeSet::new();
                    ch.collect_names(&mut chn);
                    for n in chn {
                        if !bound.contains(&n) {
                            out.insert(n);
                        }
                    }
                    add(payload, bound, out);
                    go(cont, bound, out);
                }
                Process::Input(ch, _, cont) => {
                    let mut chn = BTreeSet::new();
                    ch.collect_names(&mut chn);
                    for n in chn {
                        if !bound.contains(&n) {
                            out.insert(n);
                        }
                    }
                    go(cont, bound, out);
                }
                Process::Restrict(n, body) => {
                    bound.push(n.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                Process::Par(l, r) => {
                    go(l, bound, out);
                    go(r, bound, out);
                }
                Process::Match(a, b, cont) => {
                    add(a, bound, out);
                    add(b, bound, out);
                    go(cont, bound, out);
                }
                Process::AddrMatch(a, side, cont) => {
                    add(a, bound, out);
                    if let AddrSide::Term(b) = side {
                        add(b, bound, out);
                    }
                    go(cont, bound, out);
                }
                Process::Bang(body) => go(body, bound, out),
                Process::Split { pair, body, .. } => {
                    add(pair, bound, out);
                    go(body, bound, out);
                }
                Process::Case {
                    scrutinee,
                    key,
                    body,
                    ..
                } => {
                    add(scrutinee, bound, out);
                    add(key, bound, out);
                    go(body, bound, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// The set of free variables of the process: every variable
    /// occurrence not bound by an enclosing input or decryption.
    ///
    /// A process with no free variables is *closed* and can be executed.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(p: &Process, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            let add = |t: &Term, bound: &Vec<Var>, out: &mut BTreeSet<Var>| {
                let mut all = BTreeSet::new();
                t.collect_vars(&mut all);
                for v in all {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            };
            match p {
                Process::Nil => {}
                Process::Output(ch, payload, cont) => {
                    let mut chv = BTreeSet::new();
                    ch.collect_vars(&mut chv);
                    for v in chv {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                    add(payload, bound, out);
                    go(cont, bound, out);
                }
                Process::Input(ch, x, cont) => {
                    let mut chv = BTreeSet::new();
                    ch.collect_vars(&mut chv);
                    for v in chv {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                    bound.push(x.clone());
                    go(cont, bound, out);
                    bound.pop();
                }
                Process::Restrict(_, body) => go(body, bound, out),
                Process::Par(l, r) => {
                    go(l, bound, out);
                    go(r, bound, out);
                }
                Process::Match(a, b, cont) => {
                    add(a, bound, out);
                    add(b, bound, out);
                    go(cont, bound, out);
                }
                Process::AddrMatch(a, side, cont) => {
                    add(a, bound, out);
                    if let AddrSide::Term(b) = side {
                        add(b, bound, out);
                    }
                    go(cont, bound, out);
                }
                Process::Bang(body) => go(body, bound, out),
                Process::Split {
                    pair,
                    fst,
                    snd,
                    body,
                } => {
                    add(pair, bound, out);
                    let depth = bound.len();
                    bound.push(fst.clone());
                    bound.push(snd.clone());
                    go(body, bound, out);
                    bound.truncate(depth);
                }
                Process::Case {
                    scrutinee,
                    binders,
                    key,
                    body,
                } => {
                    add(scrutinee, bound, out);
                    add(key, bound, out);
                    let depth = bound.len();
                    bound.extend(binders.iter().cloned());
                    go(body, bound, out);
                    bound.truncate(depth);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Returns `true` when the process has no free variables and can be
    /// executed by the abstract machine.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// The set of location variables occurring in channel indexes.
    ///
    /// Location variables have no syntactic binder — they are
    /// instantiated by the semantics at first contact (Section 3.1) — so
    /// all occurrences are reported.
    #[must_use]
    pub fn loc_vars(&self) -> BTreeSet<LocVar> {
        fn go(p: &Process, out: &mut BTreeSet<LocVar>) {
            match p {
                Process::Nil => {}
                Process::Output(ch, _, cont) | Process::Input(ch, _, cont) => {
                    ch.collect_locs(out);
                    go(cont, out);
                }
                Process::Restrict(_, body) | Process::Bang(body) => go(body, out),
                Process::Par(l, r) => {
                    go(l, out);
                    go(r, out);
                }
                Process::Match(_, _, cont)
                | Process::AddrMatch(_, _, cont)
                | Process::Split { body: cont, .. }
                | Process::Case { body: cont, .. } => go(cont, out),
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn free_names_respect_restriction() {
        let p = parse("(^m) c<{m}k>").unwrap();
        let free = p.free_names();
        assert!(free.contains("c"));
        assert!(free.contains("k"));
        assert!(!free.contains("m"));
    }

    #[test]
    fn restriction_scopes_do_not_leak_sideways() {
        let p = parse("(^m) c<m> | d<m>").unwrap();
        // `(^m)` binds only in the left component of the parallel: the
        // prefix binds tighter than `|` in the concrete syntax.
        let free = p.free_names();
        assert!(free.contains("m"), "right occurrence of m is free");
    }

    #[test]
    fn free_vars_respect_input_binding() {
        // The parser resolves bound identifiers to variables and unbound
        // ones to names, so a parsed `y` with no binder is a free *name*.
        let p = parse("c(x).d<x> | e<y>").unwrap();
        assert!(p.free_vars().is_empty());
        assert!(p.free_names().contains("y"));
        assert!(p.is_closed());
        // An open process must be built directly.
        let open = Process::output(Term::name("e"), Term::var("y"), Process::Nil);
        assert!(open.free_vars().contains(&Var::new("y")));
        assert!(!open.is_closed());
    }

    #[test]
    fn case_binds_its_components() {
        let p = Process::case(
            Term::var("z"),
            ["x", "y"],
            Term::name("k"),
            Process::output(
                Term::name("d"),
                Term::pair(Term::var("x"), Term::var("y")),
                Process::Nil,
            ),
        );
        let free = p.free_vars();
        assert_eq!(free.into_iter().collect::<Vec<_>>(), vec![Var::new("z")]);
    }

    #[test]
    fn closed_process_is_closed() {
        let p = parse("c(x).case x of {y}k in d<y>").unwrap();
        assert!(p.is_closed());
    }

    #[test]
    fn loc_vars_are_collected_from_channels() {
        let p = parse("c@lam(x).c@lam<x> | d(y)").unwrap();
        let locs = p.loc_vars();
        assert_eq!(locs.len(), 1);
        assert!(locs.contains(&LocVar::new("lam")));
    }

    #[test]
    fn channel_subject_variables_are_free() {
        // A variable bound by an input can be used as a channel subject.
        let p = parse("c(x).x<m>").unwrap();
        assert!(p.is_closed());
        // Used without a binder, a variable subject is free.
        let q = Process::output(Term::var("x"), Term::name("m"), Process::Nil);
        assert_eq!(q.free_vars().len(), 1);
    }
}
