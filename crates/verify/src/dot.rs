//! Graphviz export of explored transition systems.

use std::fmt::Write as _;

use crate::{Label, Lts, StepDesc, TraceRenamer};

/// Renders the LTS in Graphviz `dot` format.
///
/// Silent edges are grey (intruder moves dashed), visible observations
/// are solid black with the canonical event as label; states exhibiting
/// barbs are drawn as double circles.
///
/// # Example
///
/// ```
/// use spi_syntax::parse;
/// use spi_verify::{to_dot, ExploreOptions, Explorer};
///
/// let lts = Explorer::new(ExploreOptions::default())
///     .explore(&parse("(^m)(c<m> | c(x).observe<x>)")?)?;
/// let dot = to_dot(&lts);
/// assert!(dot.starts_with("digraph lts {"));
/// assert!(dot.contains("->"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn to_dot(lts: &Lts) -> String {
    let mut out =
        String::from("digraph lts {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n");
    for (i, state) in lts.states.iter().enumerate() {
        let shape = if state.barbs.is_empty() {
            "circle"
        } else {
            "doublecircle"
        };
        let barbs: Vec<String> = state
            .barbs
            .iter()
            .map(|b| format!("{}{}", b.chan, if b.output { "!" } else { "?" }))
            .collect();
        let label = if barbs.is_empty() {
            format!("{i}")
        } else {
            format!("{i}\\n{}", barbs.join(","))
        };
        let _ = writeln!(out, "  s{i} [shape={shape}, label=\"{label}\"];");
    }
    let _ = writeln!(out, "  s0 [style=bold];");
    for (i, state) in lts.states.iter().enumerate() {
        for (label, tgt) in &state.edges {
            match label {
                Label::Obs(ev, _) => {
                    let text = escape(&TraceRenamer::new().canon(ev));
                    let _ = writeln!(out, "  s{i} -> s{tgt} [label=\"{text}\"];");
                }
                Label::Tau(desc) => {
                    let (style, text) = match desc {
                        StepDesc::Intercept { .. } => ("dashed", "intercept"),
                        StepDesc::Inject { .. } => ("dashed", "inject"),
                        _ => ("solid", "τ"),
                    };
                    let _ = writeln!(
                        out,
                        "  s{i} -> s{tgt} [label=\"{text}\", color=gray, style={style}, fontcolor=gray];"
                    );
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExploreOptions, Explorer, IntruderSpec};
    use spi_syntax::parse;

    #[test]
    fn dot_contains_states_and_edges() {
        let lts = Explorer::new(ExploreOptions::default())
            .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
            .unwrap();
        let dot = to_dot(&lts);
        assert!(dot.contains("s0 ["));
        assert!(dot.contains("doublecircle"), "barb states are marked");
        assert!(dot.contains("observe!"), "visible events are labelled");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn intruder_moves_are_dashed() {
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = Explorer::new(ExploreOptions {
            intruder: Some(spec),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^c)(((^m) c<m>) | 0)").unwrap())
        .unwrap();
        let dot = to_dot(&lts);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("intercept"));
    }
}
