//! Campaign-checkpoint JSON support.
//!
//! The codec itself lives in the shared [`crate::jsonlite`] module (one
//! JSON implementation for checkpoints, the `spi serve` protocol, cache
//! snapshots, and `--format json`); this module re-exports it under the
//! name the checkpoint reader/writer historically used.

pub(crate) use crate::jsonlite::Json;
