//! Byte spans for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
///
/// Produced by the lexer, threaded through the parser and carried by
/// [`SyntaxError`](crate::SyntaxError) so diagnostics can point into the
/// source.
///
/// # Example
///
/// ```
/// use spi_syntax::Span;
///
/// let sp = Span::new(4, 7);
/// assert_eq!(sp.slice("abc def ghi"), "def");
/// assert_eq!(sp.line_col("abc def ghi"), (1, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span from byte offsets.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input diagnostics.
    #[must_use]
    pub fn point(pos: usize) -> Span {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The source text covered by the span (clamped to the source).
    #[must_use]
    pub fn slice<'s>(&self, source: &'s str) -> &'s str {
        let start = self.start.min(source.len());
        let end = self.end.min(source.len());
        &source[start..end]
    }

    /// The 1-based `(line, column)` of the span start within `source`.
    #[must_use]
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto.rfind('\n').map_or(upto.chars().count() + 1, |nl| {
            upto[nl + 1..].chars().count() + 1
        });
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_extracts_text() {
        assert_eq!(Span::new(0, 3).slice("case x"), "cas");
        assert_eq!(Span::new(5, 6).slice("case x"), "x");
    }

    #[test]
    fn slice_clamps_out_of_range() {
        assert_eq!(Span::new(3, 99).slice("abcdef"), "def");
        assert_eq!(Span::new(99, 104).slice("abc"), "");
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(4).line_col(src), (2, 2));
        assert_eq!(Span::point(7).line_col(src), (3, 1));
    }

    #[test]
    fn merge_covers_both() {
        assert_eq!(Span::new(2, 4).merge(Span::new(7, 9)), Span::new(2, 9));
        assert_eq!(Span::new(7, 9).merge(Span::new(2, 4)), Span::new(2, 9));
    }
}
