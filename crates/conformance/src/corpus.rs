//! The regression corpus: shrunk reproducers on disk, replayable forever.
//!
//! Every failure the harness shrinks is written as a standalone `.spi`
//! program under `conformance/corpus/regressions/`, self-describing via
//! `--` directive comments **at the top of the file** (the program parser
//! only skips comment lines before the first section):
//!
//! ```text
//! -- conformance reproducer
//! -- oracle: workers
//! -- seed: 7 case: 12
//! -- channels: c,d
//! -- fault: drop:c:1
//! -- expect: fail            (only for planted-bug reproducers)
//! -- inject: truncate-keys:4 (ditto)
//! system (^s)(c<m> | c(x1))
//! ```
//!
//! Replaying a reproducer reconstructs the case, runs the named oracle
//! and checks the expectation: ordinary reproducers must **pass** (the
//! bug they caught stays fixed), planted-bug reproducers must **fail**
//! under their recorded injection (the harness still catches the bug).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use spi_semantics::{FaultClause, FaultSpec};
use spi_syntax::parse_program;

use crate::oracle::{check_process, oracle_by_name, Injection, OracleEnv, Verdict};
use crate::shrink::Shrunk;

/// A reproducer parsed back from disk.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The oracle the failure was found by.
    pub oracle: String,
    /// The `(seed, index)` pair of the originating case.
    pub origin: (u64, u64),
    /// The channel alphabet the case drew from.
    pub channels: Vec<String>,
    /// The fault schedule, if the failure needs one.
    pub faults: Option<FaultSpec>,
    /// The planted bug the reproducer documents, if any.
    pub inject: Option<Injection>,
    /// Whether replay expects the oracle to fail (planted bugs) or pass.
    pub expect_fail: bool,
    /// The shrunk system.
    pub system: spi_syntax::Process,
}

/// Renders a shrunk failure as reproducer file text.
#[must_use]
pub fn render(
    oracle: &str,
    seed: u64,
    index: u64,
    channels: &[String],
    shrunk: &Shrunk,
    inject: Option<Injection>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- conformance reproducer");
    let _ = writeln!(out, "-- oracle: {oracle}");
    let _ = writeln!(out, "-- seed: {seed} case: {index}");
    if !channels.is_empty() {
        let _ = writeln!(out, "-- channels: {}", channels.join(","));
    }
    if let Some(spec) = &shrunk.faults {
        for c in &spec.clauses {
            let _ = writeln!(out, "-- fault: {}:{}:{}", c.kind.keyword(), c.chan, c.max);
        }
    }
    if let Some(inj) = inject {
        let _ = writeln!(out, "-- expect: fail");
        let _ = writeln!(out, "-- inject: {}", inj.directive());
    }
    let _ = writeln!(out, "system {}", shrunk.process);
    out
}

/// A stable filename for a reproducer: the oracle name plus a 64-bit
/// FNV-1a digest of the file body.
#[must_use]
pub fn filename(oracle: &str, body: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in body.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{oracle}-{h:016x}.spi")
}

/// Writes a reproducer into `dir`, creating it if needed, and returns the
/// file path.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn write_reproducer(
    dir: &Path,
    oracle: &str,
    seed: u64,
    index: u64,
    channels: &[String],
    shrunk: &Shrunk,
    inject: Option<Injection>,
) -> Result<PathBuf, String> {
    let body = render(oracle, seed, index, channels, shrunk, inject);
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(filename(oracle, &body));
    fs::write(&path, &body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Parses reproducer file text back into a replayable case.
///
/// # Errors
///
/// Reports malformed directives and program syntax errors.
pub fn parse_reproducer(src: &str) -> Result<Reproducer, String> {
    let mut oracle = None;
    let mut origin = (0u64, 0u64);
    let mut channels = Vec::new();
    let mut clauses: Vec<FaultClause> = Vec::new();
    let mut inject = None;
    let mut expect_fail = false;
    for line in src.lines() {
        let Some(directive) = line.trim_start().strip_prefix("--") else {
            break; // first non-comment line: the program begins.
        };
        let directive = directive.trim();
        if let Some(name) = directive.strip_prefix("oracle:") {
            oracle = Some(name.trim().to_string());
        } else if let Some(rest) = directive.strip_prefix("seed:") {
            // `seed: N case: M`
            let mut nums = rest
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .map(str::parse::<u64>);
            if let (Some(Ok(s)), Some(Ok(i))) = (nums.next(), nums.next()) {
                origin = (s, i);
            }
        } else if let Some(list) = directive.strip_prefix("channels:") {
            channels = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(ToString::to_string)
                .collect();
        } else if let Some(clause) = directive.strip_prefix("fault:") {
            clauses.push(
                clause
                    .trim()
                    .parse::<FaultClause>()
                    .map_err(|e| format!("bad fault directive `{clause}`: {}", e.reason))?,
            );
        } else if let Some(spec) = directive.strip_prefix("inject:") {
            inject = Some(Injection::parse(spec.trim())?);
        } else if directive.strip_prefix("expect:").map(str::trim) == Some("fail") {
            expect_fail = true;
        }
    }
    let oracle = oracle.ok_or("missing `-- oracle:` directive")?;
    let program = parse_program(src).map_err(|e| format!("program does not parse: {e}"))?;
    Ok(Reproducer {
        oracle,
        origin,
        channels,
        faults: (!clauses.is_empty()).then(|| FaultSpec::new(clauses)),
        inject,
        expect_fail,
        system: program.system,
    })
}

/// Replays one reproducer: runs its oracle and checks the expectation.
///
/// # Errors
///
/// Reports unknown oracles, verdicts contradicting the expectation, and
/// `Skip` (a reproducer the oracle can no longer reach is stale, not
/// passing).
pub fn replay(rep: &Reproducer) -> Result<(), String> {
    let oracle =
        oracle_by_name(&rep.oracle).ok_or_else(|| format!("unknown oracle `{}`", rep.oracle))?;
    let env = OracleEnv {
        injection: rep.inject,
        ..OracleEnv::default()
    };
    let verdict = check_process(
        oracle.as_ref(),
        &rep.system,
        rep.faults.clone(),
        &rep.channels,
        &env,
    );
    match (rep.expect_fail, verdict) {
        (false, Verdict::Pass) => Ok(()),
        (true, Verdict::Fail(_)) => Ok(()),
        (false, Verdict::Fail(msg)) => Err(format!("regressed: {msg}")),
        (true, Verdict::Pass) => Err(
            "planted bug no longer caught: the oracle passed under injection".to_string(),
        ),
        (_, Verdict::Skip(why)) => Err(format!("stale reproducer (oracle skipped): {why}")),
    }
}

/// Replays every `.spi` reproducer in `dir` (missing directory = empty
/// corpus), returning `(replayed, failures)`.
#[must_use]
pub fn replay_dir(dir: &Path) -> (usize, Vec<String>) {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "spi"))
            .collect(),
        Err(_) => return (0, Vec::new()),
    };
    files.sort();
    let mut failures = Vec::new();
    for path in &files {
        let outcome = fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| parse_reproducer(&src))
            .and_then(|rep| replay(&rep));
        if let Err(msg) = outcome {
            failures.push(format!("{}: {msg}", path.display()));
        }
    }
    (files.len(), failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shrink::Shrunk;
    use spi_syntax::parse;

    fn shrunk(src: &str, faults: Option<FaultSpec>) -> Shrunk {
        Shrunk {
            process: parse(src).expect("parses"),
            faults,
            message: "msg".to_string(),
            steps: 1,
        }
    }

    #[test]
    fn reproducers_render_parse_and_roundtrip() {
        let s = shrunk(
            "(^s)(c<m> | c(x1))",
            Some(FaultSpec::single(
                spi_semantics::FaultKind::Drop,
                spi_syntax::Name::new("c"),
                1,
            )),
        );
        let body = render("workers", 7, 12, &["c".to_string()], &s, None);
        let rep = parse_reproducer(&body).expect("parses back");
        assert_eq!(rep.oracle, "workers");
        assert_eq!(rep.origin, (7, 12));
        assert_eq!(rep.channels, vec!["c".to_string()]);
        assert_eq!(rep.system, s.process);
        assert_eq!(
            rep.faults.map(|f| f.canonical_key()),
            s.faults.map(|f| f.canonical_key())
        );
        assert!(!rep.expect_fail);
    }

    #[test]
    fn injected_reproducers_record_the_bug() {
        let s = shrunk("c<m>", None);
        let body = render(
            "cowstate",
            1,
            2,
            &[],
            &s,
            Some(Injection::TruncateCanonKeys(4)),
        );
        let rep = parse_reproducer(&body).expect("parses back");
        assert!(rep.expect_fail);
        assert_eq!(rep.inject, Some(Injection::TruncateCanonKeys(4)));
    }

    #[test]
    fn filenames_are_stable_and_distinct() {
        let a = filename("workers", "body-a");
        assert_eq!(a, filename("workers", "body-a"));
        assert_ne!(a, filename("workers", "body-b"));
        assert!(a.starts_with("workers-") && a.ends_with(".spi"));
    }

    #[test]
    fn missing_oracle_directive_is_an_error() {
        assert!(parse_reproducer("system c<m>\n").is_err());
    }
}
