//! Experiments E3–E5 — Section 5.1 of the paper: Proposition 1, the
//! counterexample showing `P1 ⋢ P`, and Proposition 2 (`P2` securely
//! implements `P`).

use spi_auth_repro::auth::{propositions, Verdict, Verifier};
use spi_auth_repro::protocols::single;
use spi_auth_repro::semantics::Barb;
use spi_auth_repro::syntax::{parse, Name, Process};
use spi_auth_repro::verify::{passes_test, simulates, ExploreOptions};

#[test]
fn proposition_1_startup_localizes_in_any_environment() {
    let audit = propositions::proposition_1().unwrap();
    assert!(audit.observations > 0);
    assert!(audit.all_from_a, "λ_B only ever binds to A's address");
    assert!(!audit.replay_found);
}

#[test]
fn e4_the_paper_tester_distinguishes_p1_from_p() {
    // The paper's scenario: E = (νME) c̄⟨ME⟩, tester checks z originated
    // at E.  (νc)(P1|E) passes, (νc)(P|E) does not.
    let e = parse("(^mE) c<mE>").unwrap();
    let tester = parse("observe(z).[z ~ @(1.01)] beta<z>").unwrap();
    let beta = Barb {
        chan: Name::new("beta"),
        output: true,
    };
    let opts = ExploreOptions::default();

    let sys_p1 = Process::restrict(
        "c",
        Process::par(single::plaintext("c", "observe"), e.clone()),
    );
    assert!(
        passes_test(&sys_p1, &tester, &beta, &opts)
            .unwrap()
            .is_some(),
        "P1 accepts E's message"
    );

    let sys_p = Process::restrict(
        "c",
        Process::par(single::abstract_protocol("c", "observe").unwrap(), e),
    );
    assert!(
        passes_test(&sys_p, &tester, &beta, &opts)
            .unwrap()
            .is_none(),
        "the abstract P never accepts from E"
    );
}

#[test]
fn e4_the_verifier_finds_the_attack_automatically() {
    let attack = propositions::counterexample_p1()
        .unwrap()
        .expect("P1 is attackable");
    let text = attack.narration.join("\n");
    assert!(text.contains("E(A) → B"), "paper notation: {text}");
    // The distinguishing trace shows B revealing a message whose origin
    // is the intruder's position ‖1.
    assert!(
        attack.trace.iter().any(|e| e.contains("@1")),
        "origin-annotated witness: {:?}",
        attack.trace
    );
}

#[test]
fn proposition_2_shared_key_implements_the_abstract_protocol() {
    let report = propositions::proposition_2().unwrap();
    assert!(
        matches!(report.verdict, Verdict::SecurelyImplements),
        "{report:?}"
    );
    assert!(report.traces_checked >= 2);
}

#[test]
fn proposition_2_also_passes_the_simulation_diagnostic() {
    // The paper proves Prop. 2 with a barbed weak simulation; our
    // simulation checker agrees on the explored systems.
    let verifier = Verifier::new(["c"]);
    let concrete = verifier
        .explore(&single::shared_key("c", "observe"))
        .unwrap();
    let abstract_ = verifier
        .explore(&single::abstract_protocol("c", "observe").unwrap())
        .unwrap();
    assert!(simulates(&abstract_, &concrete).holds());
}

#[test]
fn the_preorder_is_strict_where_it_should_be() {
    // The abstract protocol trivially implements itself; P1 implements
    // itself too (reflexivity sanity checks).
    let verifier = Verifier::new(["c"]);
    let p = single::abstract_protocol("c", "observe").unwrap();
    assert!(matches!(
        verifier.check(&p, &p).unwrap().verdict,
        Verdict::SecurelyImplements
    ));
    let p1 = single::plaintext("c", "observe");
    assert!(matches!(
        verifier.check(&p1, &p1).unwrap().verdict,
        Verdict::SecurelyImplements
    ));
}

#[test]
fn startup_with_both_location_variables_hooks_both_ways() {
    // The full Proposition 1 statement binds both λ_A and λ_B.  With the
    // sender also localized, the protocol additionally gets secrecy: no
    // intruder move can touch either direction.
    use spi_auth_repro::protocols::{startup, StartupIndex};
    use spi_auth_repro::syntax::Name;
    use spi_auth_repro::verify::check_secrecy;

    let a = parse("(^m) c@lamA<m>").unwrap();
    let b = parse("c@lamB(z).observe<z>").unwrap();
    let p = startup(StartupIndex::from("lamA"), a, StartupIndex::from("lamB"), b).unwrap();
    let verifier = Verifier::new(["c"]);
    let lts = verifier.explore(&p).unwrap();
    // The protocol still completes...
    assert!(lts.weak_barbs().iter().any(|bb| bb.chan == "observe"));
    // ...every observation still originates at A...
    use spi_auth_repro::verify::{Label, ObsTerm};
    for state in &lts.states {
        for (label, _) in &state.edges {
            if let Label::Obs(ev, _) = label {
                match &ev.payload {
                    ObsTerm::Fresh { creator, .. } => {
                        assert!(creator.to_bits().starts_with("00"), "{creator:?}");
                    }
                    other => panic!("unexpected payload {other:?}"),
                }
            }
        }
    }
    // ...and, unlike the paper's P, the message is also secret.
    assert!(check_secrecy(&lts, &[Name::new("m")]).holds());
}

#[test]
fn locating_the_output_also_gives_secrecy() {
    // The paper remarks that localizing A's output (A′ = (νM) c̄_{‖0•‖1}⟨M⟩)
    // guarantees that B is the only possible receiver: the intruder can
    // then no longer intercept M.
    let localized = parse("(^s)(s<s>.(^m)c@(0.1)<m> | s@lamB(x_s).c@lamB(z).observe<z>)").unwrap();
    let verifier = Verifier::new(["c"]);
    let lts = verifier.explore(&localized).unwrap();
    let intercepts = lts.states.iter().any(|s| {
        s.edges
            .iter()
            .any(|(l, _)| matches!(l.desc(), spi_auth_repro::verify::StepDesc::Intercept { .. }))
    });
    assert!(
        !intercepts,
        "a fully localized channel defeats interception"
    );
    // And the protocol still completes.
    assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
}
