//! One benchmark per experiment of the paper (E3–E8): the time to
//! re-derive each proposition / counterexample mechanically.
//!
//! The paper reports no timings (it has no implementation); these benches
//! are the measured counterpart recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use spi_auth::propositions;
use spi_auth::{Verdict, Verifier};
use spi_protocols::{multi, single};

fn e3_proposition_1(c: &mut Criterion) {
    c.bench_function("e3_prop1_startup_audit", |b| {
        b.iter(|| {
            let audit = propositions::proposition_1().expect("explores");
            assert!(audit.all_from_a);
            audit
        });
    });
}

fn e4_attack_search_p1(c: &mut Criterion) {
    c.bench_function("e4_attack_search_p1", |b| {
        b.iter(|| {
            propositions::counterexample_p1()
                .expect("explores")
                .expect("attack found")
        });
    });
}

fn e5_verify_p2(c: &mut Criterion) {
    c.bench_function("e5_verify_p2_implements_p", |b| {
        b.iter(|| {
            let report = propositions::proposition_2().expect("explores");
            assert!(matches!(report.verdict, Verdict::SecurelyImplements));
            report
        });
    });
}

fn e6_proposition_3(c: &mut Criterion) {
    c.bench_function("e6_prop3_multisession_audit", |b| {
        b.iter(|| {
            let audit = propositions::proposition_3(2).expect("explores");
            assert!(audit.all_from_a && !audit.replay_found);
            audit
        });
    });
}

fn e7_attack_search_pm2(c: &mut Criterion) {
    c.bench_function("e7_attack_search_pm2_replay", |b| {
        b.iter(|| {
            propositions::counterexample_pm2(2)
                .expect("explores")
                .expect("replay found")
        });
    });
}

fn e8_verify_pm3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("verify_pm3_implements_pm", |b| {
        b.iter(|| {
            let report = propositions::proposition_4(2).expect("explores");
            assert!(matches!(report.verdict, Verdict::SecurelyImplements));
            report
        });
    });
    group.finish();
}

/// Ablation: the same checks driven through the generic verifier with the
/// simulation diagnostic disabled vs enabled exploration reuse.
fn ablation_exploration_reuse(c: &mut Criterion) {
    let verifier = Verifier::new(["c"]);
    let p2 = single::shared_key("c", "observe");
    let p = single::abstract_protocol("c", "observe").expect("builds");
    c.bench_function("ablation_explore_only_p2", |b| {
        b.iter(|| verifier.explore(&p2).expect("explores").stats);
    });
    let pm2 = multi::shared_key("c", "observe");
    let verifier2 = Verifier::new(["c"]).sessions(2);
    c.bench_function("ablation_explore_only_pm2", |b| {
        b.iter(|| verifier2.explore(&pm2).expect("explores").stats);
    });
    let _ = p;
}

criterion_group!(
    experiments,
    e3_proposition_1,
    e4_attack_search_p1,
    e5_verify_p2,
    e6_proposition_3,
    e7_attack_search_pm2,
    e8_verify_pm3,
    ablation_exploration_reuse,
);
criterion_main!(experiments);
