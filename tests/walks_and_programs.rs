//! Random-walk fuzzing of the paper's protocols, and program-file
//! round-trips through the whole pipeline.

use spi_auth_repro::auth::{Verdict, Verifier};
use spi_auth_repro::protocols::{multi, single};
use spi_auth_repro::semantics::Config;
use spi_auth_repro::syntax::parse_program;

#[test]
fn random_walks_of_the_paper_protocols_never_wedge_the_machine() {
    // Every enabled action must fire cleanly along arbitrary schedules —
    // a cheap fuzz over the whole machine.
    let protocols = [
        single::abstract_protocol("c", "observe").unwrap(),
        single::plaintext("c", "observe"),
        single::shared_key("c", "observe"),
        multi::abstract_protocol("c", "observe").unwrap(),
        multi::shared_key("c", "observe"),
        multi::challenge_response("c", "observe"),
    ];
    for p in &protocols {
        for seed in 0..20 {
            let mut cfg = Config::from_process(p).expect("loads");
            let walk = cfg.random_walk(seed, 40, 2).expect("walks cleanly");
            // Bounded systems must quiesce within the budget; replicated
            // ones may keep unfolding.
            let _ = walk;
        }
    }
}

#[test]
fn walks_of_single_session_protocols_quiesce() {
    for p in [
        single::plaintext("c", "observe"),
        single::shared_key("c", "observe"),
    ] {
        let mut cfg = Config::from_process(&p).unwrap();
        let walk = cfg.random_walk(5, 100, 0).unwrap();
        assert!(walk.quiescent, "single sessions terminate");
    }
}

#[test]
fn program_files_feed_the_verifier() {
    let concrete = parse_program(
        "def A = (^m) c<{m}kAB>\n\
         def B = c(z).case z of {w}kAB in observe<w>\n\
         system (^kAB)($A | $B)\n",
    )
    .unwrap();
    let abstract_spec = parse_program(
        "def A = (^m) c<m>\n\
         def B = c@lamB(z).observe<z>\n\
         system (^s)(s<s>.$A | s@lamB(x_s).$B)\n",
    )
    .unwrap();
    // The program-built systems are exactly the library-built ones...
    assert_eq!(concrete.system, single::shared_key("c", "observe"));
    assert_eq!(
        abstract_spec.system,
        single::abstract_protocol("c", "observe").unwrap()
    );
    // ...and verify the same way.
    let verifier = Verifier::new(["c"]);
    assert!(matches!(
        verifier
            .check(&concrete.system, &abstract_spec.system)
            .unwrap()
            .verdict,
        Verdict::SecurelyImplements
    ));
}

#[test]
fn simplified_protocols_verify_identically() {
    // Running the static simplifier over the paper's protocols must not
    // change any verdict.
    let verifier = Verifier::new(["c"]).sessions(2);
    let pm = multi::abstract_protocol("c", "observe").unwrap();
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    assert!(matches!(
        verifier
            .check(&pm3.simplify(), &pm.simplify())
            .unwrap()
            .verdict,
        Verdict::SecurelyImplements
    ));
    assert!(matches!(
        verifier
            .check(&pm2.simplify(), &pm.simplify())
            .unwrap()
            .verdict,
        Verdict::Attack(_)
    ));
}
