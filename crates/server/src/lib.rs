//! `spi serve` — a concurrent verification service.
//!
//! This crate turns the toolkit's [`spi_verify::Verifier`] into a
//! long-lived daemon speaking newline-delimited JSON over TCP (the
//! codec is the workspace's shared [`spi_verify::jsonlite`] — no
//! external dependencies).  One process, four load-bearing pieces:
//!
//! * a **content-addressed result cache** ([`cache::ResultCache`]):
//!   every request is normalized — specs parsed and re-printed,
//!   budgets spelled canonically, fault schedules canonicalized — and
//!   digested, so two spellings of the same question share one cache
//!   entry.  Eviction is LRU under a byte budget accounted through the
//!   existing [`spi_verify::Budget`] / [`spi_verify::Governor`] types;
//! * **singleflight dedup** ([`flight::Singleflight`]): concurrent
//!   identical requests trigger exactly one exploration, with the
//!   followers served from the freshly filled cache;
//! * a **fixed worker pool with bounded admission**
//!   ([`service::serve`]): a full queue degrades to an explicit
//!   `rejected` answer (the HTTP-429 of this protocol) instead of
//!   unbounded memory growth, exactly in the spirit of the toolkit's
//!   resource governor;
//! * **graceful drain with snapshot persistence**
//!   ([`snapshot`]): on shutdown the server stops accepting, winds
//!   down in-flight explorations through the cooperative cancel flag,
//!   and flushes an atomic, identity-digest-guarded cache snapshot
//!   that a restarted server reloads — the first repeated question
//!   after a restart is already a cache hit.
//!
//! The wire protocol and the verify/campaign JSON bodies live in
//! [`protocol`]; the same body encoders power the CLI's
//! `--format json` so a script sees byte-identical shapes from
//! `spi verify` and from the daemon.
//!
//! On top of the single-node daemon sits a **fault-tolerant fleet**
//! layer: a [`coordinator`] speaking the same protocol routes requests
//! by content digest over a consistent-hash [`shard::Ring`] of
//! workers, detects failures through [`membership`] heartbeats and
//! dial errors, hedges slow dispatches, splits campaigns into
//! re-dispatchable work units, and degrades to local execution on
//! quorum loss.  Workers warm their cache shard from peers via
//! identity-digest-guarded [`gossip`], and a seeded [`chaos`] plan
//! drills the whole arrangement deterministically.
//!
//! The front end is a C10k-grade epoll **readiness loop**
//! ([`reactor`]): every connection is non-blocking and owned by one
//! reactor thread, so idle connections cost no threads, slow senders
//! are reaped at a read deadline, slow readers hit a bounded write
//! buffer, and long campaigns can stream `{"status":"progress",…}`
//! heartbeats.  [`admission`] layers per-tenant token-bucket quotas
//! and a two-class priority queue in front of the worker pool.
//!
//! The crate is `unsafe`-free except for [`reactor`]'s thin epoll FFI
//! shim, which is the only module allowed to opt out.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod coordinator;
pub mod digest;
pub mod flight;
pub mod gossip;
pub mod membership;
pub mod protocol;
pub mod reactor;
pub mod service;
pub mod shard;
pub mod snapshot;

pub use admission::{Priority, TenantQuotas};
pub use cache::ResultCache;
pub use chaos::{ChaosEvent, ChaosPlan};
pub use client::{oneshot, Client};
pub use coordinator::{coordinate, CoordinatorHandle, CoordinatorOptions, CoordinatorShutdown};
pub use gossip::{pull_from, push_to};
pub use flight::Singleflight;
pub use membership::Membership;
pub use protocol::{
    campaign_body, error_response, ok_response, parse_request, parse_source, progress_response,
    rejected_response, shed_response, verify_body, JobRequest, Mode, Request,
};
pub use reactor::Poller;
pub use service::{
    serve, CacheHandle, Engine, EngineOutcome, RunControl, ServerHandle, ServerOptions,
    ShutdownHandle, VerifierEngine,
};
pub use shard::Ring;
