//! Admission policy for the C10k front end: per-tenant token-bucket
//! quotas and two priority classes.
//!
//! The daemon already degrades a full queue to a structured `rejected`
//! answer; this module decides *who* gets the queue slots before depth
//! is even considered:
//!
//! * **Tenants.**  Every job carries a quota-accounting id — the wire
//!   `tenant` field, defaulting to the peer address — and each tenant
//!   owns a token bucket refilled at `rate` tokens/second up to
//!   `burst`.  A drained bucket answers `rejected` with a
//!   `retry_after_ms` hint (when the next token lands), so one noisy
//!   tenant cannot starve the rest.  Accounting rides the same
//!   integer-milli arithmetic as the rest of the workspace — no
//!   floats, so hints are deterministic for a given clock reading.
//! * **Priorities.**  Interactive `verify` jobs queue ahead of batch
//!   `campaign` / `conformance-replay` jobs, because a human is
//!   usually behind the former and a sweep behind the latter.  Both
//!   classes share one depth cap; priority reorders, never preempts.

use std::collections::HashMap;
use std::time::Instant;

use crate::protocol::Mode;

/// The queue class of a job: interactive jobs pop first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// A `verify` request — somebody is waiting at a prompt.
    Interactive,
    /// A `campaign` or `conformance-replay` request — part of a sweep
    /// that cares about throughput, not latency.
    Batch,
}

impl Priority {
    /// The class of a job mode.
    #[must_use]
    pub fn of(mode: Mode) -> Priority {
        match mode {
            Mode::Verify => Priority::Interactive,
            Mode::Campaign | Mode::ConformanceReplay => Priority::Batch,
        }
    }
}

/// Milli-tokens per token: buckets count in thousandths so refill
/// arithmetic stays integral at millisecond granularity.
const MILLI: u64 = 1000;

/// How many tenants the quota table tracks before idle buckets are
/// swept.  A full bucket carries no information (it admits exactly like
/// a fresh one), so sweeping full buckets changes no decision.
const SWEEP_AT: usize = 4096;

#[derive(Debug)]
struct Bucket {
    tokens_milli: u64,
    refilled: Instant,
}

/// Per-tenant token buckets.  `rate == 0` disables quotas entirely
/// (every admit succeeds and no state is kept).
#[derive(Debug)]
pub struct TenantQuotas {
    rate: u64,
    burst: u64,
    buckets: HashMap<String, Bucket>,
}

impl TenantQuotas {
    /// A quota table refilling `rate` tokens/second per tenant up to a
    /// `burst` cap (a `burst` of 0 is normalized to 1 so a configured
    /// rate is usable at all).
    #[must_use]
    pub fn new(rate: u64, burst: u64) -> TenantQuotas {
        TenantQuotas {
            rate,
            burst: burst.max(1),
            buckets: HashMap::new(),
        }
    }

    /// Whether quotas are enforced at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rate > 0
    }

    /// Takes one token from `tenant`'s bucket at time `now`.
    ///
    /// # Errors
    ///
    /// A drained bucket returns `Err(retry_after_ms)` — the
    /// milliseconds until the bucket holds a whole token again.
    pub fn admit(&mut self, tenant: &str, now: Instant) -> Result<(), u64> {
        if self.rate == 0 {
            return Ok(());
        }
        if self.buckets.len() >= SWEEP_AT && !self.buckets.contains_key(tenant) {
            let rate = self.rate;
            let burst_milli = self.burst * MILLI;
            self.buckets.retain(|_, b| {
                let refill = elapsed_ms(b.refilled, now).saturating_mul(rate);
                b.tokens_milli.saturating_add(refill) < burst_milli
            });
        }
        let burst_milli = self.burst * MILLI;
        let bucket = self
            .buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                tokens_milli: burst_milli,
                refilled: now,
            });
        let refill = elapsed_ms(bucket.refilled, now).saturating_mul(self.rate);
        bucket.tokens_milli = bucket.tokens_milli.saturating_add(refill).min(burst_milli);
        bucket.refilled = now;
        if bucket.tokens_milli >= MILLI {
            bucket.tokens_milli -= MILLI;
            Ok(())
        } else {
            let deficit = MILLI - bucket.tokens_milli;
            Err(deficit.div_ceil(self.rate).max(1))
        }
    }

    /// How many tenants currently hold bucket state.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.buckets.len()
    }
}

fn elapsed_ms(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn priorities_follow_the_mode() {
        assert_eq!(Priority::of(Mode::Verify), Priority::Interactive);
        assert_eq!(Priority::of(Mode::Campaign), Priority::Batch);
        assert_eq!(Priority::of(Mode::ConformanceReplay), Priority::Batch);
    }

    #[test]
    fn zero_rate_admits_everything_statelessly() {
        let mut q = TenantQuotas::new(0, 8);
        let now = Instant::now();
        for _ in 0..10_000 {
            assert!(q.admit("anyone", now).is_ok());
        }
        assert_eq!(q.tenants(), 0);
    }

    #[test]
    fn burst_then_deny_with_retry_hint() {
        let mut q = TenantQuotas::new(10, 3);
        let now = Instant::now();
        for _ in 0..3 {
            assert!(q.admit("alice", now).is_ok());
        }
        let retry = q.admit("alice", now).unwrap_err();
        // 10 tokens/s = one per 100 ms; an empty bucket needs the full
        // token.
        assert_eq!(retry, 100);
        // Another tenant is unaffected.
        assert!(q.admit("bob", now).is_ok());
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let mut q = TenantQuotas::new(10, 1);
        let t0 = Instant::now();
        assert!(q.admit("alice", t0).is_ok());
        assert!(q.admit("alice", t0).is_err());
        // 100 ms later exactly one token has landed.
        let t1 = t0 + Duration::from_millis(100);
        assert!(q.admit("alice", t1).is_ok());
        assert!(q.admit("alice", t1).is_err());
        // Refill never exceeds the burst cap.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(q.admit("alice", t2).is_ok());
        assert!(q.admit("alice", t2).is_err());
    }

    #[test]
    fn full_buckets_are_swept_not_leaked() {
        let mut q = TenantQuotas::new(1000, 1);
        let t0 = Instant::now();
        for i in 0..SWEEP_AT {
            assert!(q.admit(&format!("tenant-{i}"), t0).is_ok());
        }
        assert_eq!(q.tenants(), SWEEP_AT);
        // Much later every old bucket is full again; a new tenant's
        // arrival sweeps them all.
        let t1 = t0 + Duration::from_secs(60);
        assert!(q.admit("fresh", t1).is_ok());
        assert_eq!(q.tenants(), 1);
    }
}
