//! `jsonlite` — the workspace's single hand-rolled JSON codec.
//!
//! The build environment is offline (no serde), and every JSON format in
//! this workspace is ours, so this module implements just the subset
//! those formats need: objects, arrays, strings, integers, and booleans.
//! It started life inside the campaign checkpoint writer and is now the
//! shared implementation behind checkpoints, the `spi serve` wire
//! protocol, cache snapshots, and the CLI's `--format json` output —
//! exactly one JSON implementation to fuzz.
//!
//! Rendering comes in two shapes: [`Json::render`] is the canonical
//! pretty form (newlines plus two-space indents, used for files humans
//! read and diff), and [`Json::render_compact`] is the single-line form
//! required by newline-delimited wire protocols.  Parsing accepts both,
//! plus any standard whitespace.

use std::fmt::Write as _;

/// A JSON value of the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An integer (our formats never need floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer from any unsigned count (saturating at `i64::MAX`).
    #[must_use]
    pub fn count(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    /// A string value from anything string-like.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of strings.
    #[must_use]
    pub fn str_arr<I, S>(items: I) -> Json
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Json::Arr(items.into_iter().map(|s| Json::Str(s.into())).collect())
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty JSON text (newlines and two-space
    /// indents) — the shape checkpoints and snapshots are written in.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders the value on a single line with no insignificant
    /// whitespace — the shape newline-delimited protocols require.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// `indent`: `Some(depth)` renders pretty, `None` renders compact.
    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    write_escaped(k, out);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses JSON text (the subset above; `null` and floats rejected
    /// explicitly — our formats never contain them).
    ///
    /// # Errors
    ///
    /// Returns a byte-positioned description of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>) {
    let Some(indent) = indent else {
        return;
    };
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Json::Int)
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad codepoint \\u{hex:04x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|b| b as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unescaped).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Int(1)),
            ("done".into(), Json::Bool(true)),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Str("plain".into()),
                    Json::Str("quoted \"x\" \\ and\nnewline \u{1f}".into()),
                    Json::Obj(vec![]),
                    Json::Arr(vec![]),
                    Json::Int(-42),
                ]),
            ),
        ])
    }

    #[test]
    fn round_trips_nested_values() {
        let v = nested();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let v = nested();
        let text = v.render_compact();
        assert!(!text.contains('\n'), "{text}");
        assert!(!text.contains(": "), "no space after colons: {text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_foreign_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] ,\n\t\"b\": \"x\" } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("null").is_err(), "null is outside the subset");
        assert!(Json::parse("1.5").is_err(), "floats are outside the subset");
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse("{\"n\": 3, \"s\": \"t\", \"b\": false}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_str), None);
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("n").and_then(Json::as_bool), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(true).get("x"), None);
    }

    #[test]
    fn construction_helpers() {
        assert_eq!(Json::count(3), Json::Int(3));
        assert_eq!(Json::count(usize::MAX), Json::Int(i64::MAX));
        assert_eq!(Json::str("x"), Json::Str("x".into()));
        assert_eq!(
            Json::str_arr(["a", "b"]),
            Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())])
        );
    }
}
