//! The daemon: acceptor, worker pool, admission control, drain.
//!
//! ```text
//! client ──TCP──▶ connection thread ──▶ cache probe ──hit──▶ reply (cached:true)
//!                                        │ miss
//!                                        ▼ admission (Governor over queue depth)
//!                                   bounded queue ──▶ worker pool ──▶ singleflight
//!                                        │ full                        │ leader
//!                                        ▼                             ▼
//!                                 reply (rejected)             engine run ──▶ cache
//!                                                              + eager snapshot
//! ```
//!
//! Graceful drain (a `shutdown` request, or stdin-close in the CLI
//! front-end): stop accepting, reject new jobs, cancel in-flight
//! explorations through the shared cooperative cancel flag (they
//! answer *inconclusive*, never silently partial), and flush the
//! snapshot.  Snapshots are also written eagerly after every fresh
//! cache fill, so even an abrupt SIGTERM kill leaves the latest
//! completed results on disk for the next start.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spi_verify::jsonlite::Json;
use spi_verify::{Budget, Governor, ResourceKind, Verdict, Verifier};

use crate::cache::ResultCache;
use crate::flight::Singleflight;
use crate::protocol::{
    campaign_body, error_response, ok_response, parse_request, parse_source, rejected_response,
    verify_body, JobRequest, Mode, Request,
};
use crate::snapshot::{load_snapshot, write_snapshot};

/// Execution control handed to an [`Engine`] run: the per-request
/// deadline plus the server-wide cooperative cancel flag (tripped on
/// drain).
#[derive(Debug, Clone)]
pub struct RunControl {
    /// Wall-clock cut-off for this request, if any.
    pub deadline: Option<Instant>,
    /// The drain flag shared by every in-flight run.
    pub cancel: Arc<AtomicBool>,
}

impl RunControl {
    /// Returns `true` once the run was cancelled or timed out — results
    /// produced after a trip are truncated and must not be cached.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// What an engine run produced.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The response body, or an error reason.
    pub body: Result<Json, String>,
    /// Whether the body may be cached.  Wall-clock-truncated and
    /// errored runs are not cacheable — rerunning them could give a
    /// different (better) answer; deterministic-budget verdicts are.
    pub cacheable: bool,
}

impl EngineOutcome {
    /// A non-cacheable error outcome.
    #[must_use]
    pub fn error(reason: impl Into<String>) -> EngineOutcome {
        EngineOutcome {
            body: Err(reason.into()),
            cacheable: false,
        }
    }
}

/// The pluggable execution back-end.  [`VerifierEngine`] handles
/// verify and campaign; the `spi` binary assembles a full engine that
/// adds conformance replay; tests plug in stubs.
pub trait Engine: Send + Sync {
    /// Executes one job under the given control.
    fn run(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome;
}

/// The standard engine: builds a [`Verifier`] from the job options and
/// runs checks and campaigns.
#[derive(Debug, Clone, Default)]
pub struct VerifierEngine {
    /// Worker threads per exploration (`None` = the verifier default).
    /// A busy daemon usually wants a small value here so parallelism
    /// comes from the request pool, not from each exploration.
    pub explore_workers: Option<usize>,
}

impl VerifierEngine {
    /// An engine with default exploration parallelism.
    #[must_use]
    pub fn new() -> VerifierEngine {
        VerifierEngine::default()
    }

    fn build_verifier(&self, job: &JobRequest, ctl: &RunControl) -> Verifier {
        let mut v = Verifier::new(job.channels.iter().map(String::as_str))
            .sessions(job.sessions)
            .max_visible(job.visible)
            .budget(job.budget)
            .cancel(Arc::clone(&ctl.cancel));
        if let Some(d) = ctl.deadline {
            v = v.deadline(d);
        }
        if let Some(w) = self.explore_workers {
            v = v.workers(w);
        }
        if let Some(f) = &job.faults {
            v = v.faults(f.clone());
        }
        if !job.intruder {
            v = v.no_intruder();
        }
        v.reduce(job.reduce)
    }
}

impl Engine for VerifierEngine {
    fn run(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome {
        let verifier = self.build_verifier(job, ctl);
        match job.mode {
            Mode::Verify => {
                let concrete = match parse_source(&job.concrete) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let spec = match parse_source(&job.abstract_spec) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                match verifier.check(&concrete, &spec) {
                    Ok(report) => {
                        let truncated = matches!(
                            report.verdict,
                            Verdict::Inconclusive {
                                exhausted: ResourceKind::WallClock,
                                ..
                            }
                        );
                        EngineOutcome {
                            body: Ok(verify_body(&report)),
                            cacheable: !truncated,
                        }
                    }
                    Err(e) => EngineOutcome::error(e.to_string()),
                }
            }
            Mode::Campaign => {
                let concrete = match parse_source(&job.concrete) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let spec = match parse_source(&job.abstract_spec) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let mut opts = verifier.campaign_options(job.faults_depth);
                // A fleet work unit restricts this run to a contiguous
                // index range of the (deterministic) enumeration; the
                // coordinator stitches unit results back together.
                opts.schedule_range = job.unit;
                match verifier.run_campaign(&concrete, &spec, &opts) {
                    Ok(report) => EngineOutcome {
                        cacheable: !report.interrupted && !ctl.tripped(),
                        body: Ok(campaign_body(&report)),
                    },
                    Err(e) => EngineOutcome::error(e.to_string()),
                }
            }
            Mode::ConformanceReplay => EngineOutcome::error(
                "conformance-replay needs the full engine assembled by the spi binary",
            ),
        }
    }
}

/// Server configuration (the `spi serve` flags).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Snapshot path; `None` disables persistence.
    pub snapshot: Option<PathBuf>,
    /// Bounded-queue capacity; a full queue rejects new jobs.
    pub queue_cap: usize,
    /// Default per-request timeout applied when a request names none.
    pub default_timeout_secs: Option<u64>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:7970".into(),
            workers: 2,
            cache_bytes: 8 * 1024 * 1024,
            snapshot: None,
            queue_cap: 16,
            default_timeout_secs: None,
        }
    }
}

struct Ticket {
    digest: String,
    job: JobRequest,
    reply: mpsc::Sender<String>,
}

/// Per-op request-latency histogram over power-of-two microsecond
/// buckets.  Quantiles report the bucket's upper bound — coarse, but
/// lock-free to record and honest about its resolution.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; 32],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (64 - u64::leading_zeros(us) as usize).min(self.counts.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The `pct`-th percentile in microseconds (upper bucket bound);
    /// zero when nothing was recorded.
    #[must_use]
    pub fn percentile_us(&self, pct: u64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (total * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << idx;
            }
        }
        1u64 << (counts.len() - 1)
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "count".to_string(),
                Json::count(usize::try_from(self.count()).unwrap_or(usize::MAX)),
            ),
            (
                "p50_us".to_string(),
                Json::count(usize::try_from(self.percentile_us(50)).unwrap_or(usize::MAX)),
            ),
            (
                "p99_us".to_string(),
                Json::count(usize::try_from(self.percentile_us(99)).unwrap_or(usize::MAX)),
            ),
        ])
    }
}

/// One histogram per job op plus one for control ops.
#[derive(Debug, Default)]
struct Latency {
    verify: Histogram,
    campaign: Histogram,
    replay: Histogram,
    control: Histogram,
}

impl Latency {
    fn for_op(&self, op: &str) -> &Histogram {
        match op {
            "verify" => &self.verify,
            "campaign" => &self.campaign,
            "conformance-replay" => &self.replay,
            _ => &self.control,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("verify".to_string(), self.verify.to_json()),
            ("campaign".to_string(), self.campaign.to_json()),
            ("conformance-replay".to_string(), self.replay.to_json()),
            ("control".to_string(), self.control.to_json()),
        ])
    }
}

struct Shared {
    engine: Arc<dyn Engine>,
    opts: ServerOptions,
    addr: SocketAddr,
    cache: Mutex<ResultCache>,
    flight: Singleflight,
    queue: Mutex<VecDeque<Ticket>>,
    queue_cv: Condvar,
    /// Queue admission rides the Budget states dimension: the governor
    /// admits one more queued job iff the current depth is under cap.
    admission: Mutex<Governor>,
    draining: AtomicBool,
    cancel: Arc<AtomicBool>,
    inflight: AtomicUsize,
    executions: AtomicU64,
    rejected: AtomicU64,
    /// Duplicate in-flight requests collapsed by singleflight (a parked
    /// follower answered from the leader's cache fill).
    collapsed: AtomicU64,
    /// Cumulative reduction counters across every fresh engine run (the
    /// `stats` op reports them so operators can see what the configured
    /// `reduce` modes are saving fleet-wide).
    quotiented: AtomicU64,
    pruned: AtomicU64,
    latency: Latency,
}

/// A running server.  Dropping the handle does **not** stop it; call
/// [`ServerHandle::join`] (or send a `shutdown` request) to drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// How many engine runs actually executed — the singleflight /
    /// cache probe counter tests assert on.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.shared.executions.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: stop accepting, reject new jobs, cancel
    /// in-flight explorations.  Idempotent; returns immediately.
    pub fn shutdown(&self) {
        trigger_drain(&self.shared);
    }

    /// Whether a drain has been triggered (by [`ServerHandle::shutdown`],
    /// a `shutdown` request, or a [`ShutdownHandle`]).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Merges gossiped `(key, op, body)` cache entries into this
    /// node's result cache (insertion is idempotent: existing keys are
    /// refreshed, never corrupted).  Returns how many entries were
    /// offered to the cache.
    pub fn absorb(&self, entries: Vec<(String, String, String)>) -> usize {
        absorb_entries(&self.shared, entries)
    }

    /// The current cache contents in LRU order — the gossip payload.
    #[must_use]
    pub fn cache_entries(&self) -> Vec<(String, String, String)> {
        self.shared.cache.lock().expect("cache lock").entries_lru()
    }

    /// A cheap cloneable handle another thread can use to trigger the
    /// drain (e.g. the CLI's stdin watcher).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cheap handle another thread can use to warm this node's cache
    /// with gossiped entries (the `--join` heartbeat warms through it
    /// after a rejoin acknowledgement).
    #[must_use]
    pub fn cache_handle(&self) -> CacheHandle {
        CacheHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until *something* triggers the drain — a `shutdown`
    /// request over the wire, a [`ShutdownHandle`], or a prior
    /// [`ServerHandle::shutdown`] — then joins and flushes the final
    /// snapshot.
    pub fn join_on_drain(self) {
        while !self.draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Drains and waits for every worker to finish, then flushes the
    /// final snapshot.
    pub fn join(self) {
        self.shutdown();
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        persist_snapshot(&self.shared);
    }
}

/// Triggers a server's drain from any thread (see
/// [`ServerHandle::shutdown_handle`]).
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins the graceful drain.  Idempotent.
    pub fn shutdown(&self) {
        trigger_drain(&self.shared);
    }
}

/// Feeds gossiped entries into a running server's cache from another
/// thread (see [`ServerHandle::cache_handle`]).
pub struct CacheHandle {
    shared: Arc<Shared>,
}

impl CacheHandle {
    /// See [`ServerHandle::absorb`].
    pub fn absorb(&self, entries: Vec<(String, String, String)>) -> usize {
        absorb_entries(&self.shared, entries)
    }

    /// Whether the server is draining — the heartbeat loop's exit cue.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

fn absorb_entries(shared: &Arc<Shared>, entries: Vec<(String, String, String)>) -> usize {
    let offered = entries.len();
    {
        let mut cache = shared.cache.lock().expect("cache lock");
        for (key, op, body) in entries {
            cache.insert(key, op, body);
        }
    }
    persist_snapshot(shared);
    offered
}

fn trigger_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.cancel.store(true, Ordering::Relaxed);
    shared.queue_cv.notify_all();
    // Unblock the acceptor with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

fn persist_snapshot(shared: &Shared) {
    let Some(path) = &shared.opts.snapshot else {
        return;
    };
    let entries = shared.cache.lock().expect("cache lock").entries_lru();
    if let Err(e) = write_snapshot(path, &entries) {
        eprintln!("spi-serve: snapshot write failed: {e}");
    }
}

/// Starts a server.  The listener is bound before this returns, so the
/// caller may connect to [`ServerHandle::addr`] immediately.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve(engine: Arc<dyn Engine>, opts: ServerOptions) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&opts.addr)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;

    let mut cache = ResultCache::new(opts.cache_bytes);
    if let Some(path) = &opts.snapshot {
        if path.exists() {
            match load_snapshot(path) {
                Ok(entries) => {
                    for (key, op, body) in entries {
                        cache.insert(key, op, body);
                    }
                }
                Err(e) => eprintln!("spi-serve: ignoring snapshot: {e}"),
            }
        }
    }

    let queue_cap = opts.queue_cap.max(1);
    let workers = opts.workers.max(1);
    let shared = Arc::new(Shared {
        engine,
        addr,
        cache: Mutex::new(cache),
        flight: Singleflight::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        admission: Mutex::new(Governor::new(Budget::unlimited().states(queue_cap))),
        draining: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        inflight: AtomicUsize::new(0),
        executions: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        collapsed: AtomicU64::new(0),
        quotiented: AtomicU64::new(0),
        pruned: AtomicU64::new(0),
        latency: Latency::default(),
        opts,
    });

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&shared);
                // Connection threads are detached: they die with their
                // sockets and never block the drain.
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor,
        workers: worker_handles,
    })
}

/// The longest request line a connection may send.  Anything larger is
/// answered with a structured error — the oversized bytes are streamed
/// past (never buffered whole), so a hostile 10 MB line costs one
/// error response, not a worker slot or an allocation spike.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Reads one newline-terminated line with a byte cap.
///
/// Returns `Ok(None)` on clean EOF, `Ok(Some(Err(reason)))` for an
/// oversized or non-UTF-8 line (the offending bytes are consumed so
/// the connection stays usable), and `Ok(Some(Ok(line)))` otherwise.
pub(crate) fn read_line_capped(
    reader: &mut impl BufRead,
) -> std::io::Result<Option<Result<String, String>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflowed {
            if buf.len() + take <= MAX_LINE_BYTES {
                buf.extend_from_slice(&chunk[..take]);
            } else {
                overflowed = true;
                buf.clear();
            }
        }
        let consumed = newline.map_or(take, |p| p + 1);
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if overflowed {
        return Ok(Some(Err(format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        ))));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err("request line is not valid UTF-8".to_string()))),
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Line-sized writes; without NODELAY the Nagle/delayed-ACK
    // interaction costs tens of milliseconds per response.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let response = match read_line_capped(&mut reader) {
            Err(_) | Ok(None) => break,
            Ok(Some(Err(reason))) => error_response("request", &reason).render_compact(),
            Ok(Some(Ok(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(shared, &line)
            }
        };
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    let started = Instant::now();
    let (op, response) = match parse_request(line) {
        Err(e) => ("request", error_response("request", &e).render_compact()),
        Ok(Request::Ping) => (
            "ping",
            ok_response("ping", None, false, Json::Obj(vec![])).render_compact(),
        ),
        Ok(Request::Stats) => ("stats", stats_response(shared).render_compact()),
        Ok(Request::Shutdown) => {
            trigger_drain(shared);
            (
                "shutdown",
                ok_response("shutdown", None, false, Json::Obj(vec![])).render_compact(),
            )
        }
        Ok(Request::Join { .. }) => (
            "join",
            error_response(
                "join",
                "this node is not a coordinator (join a fleet started with `spi fleet`)",
            )
            .render_compact(),
        ),
        Ok(Request::Gossip) => ("gossip", gossip_response(shared).render_compact()),
        Ok(Request::Job(job)) => {
            let op = job.mode.keyword();
            (op, handle_job(shared, *job))
        }
    };
    let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.latency.for_op(op).record_us(elapsed);
    response
}

fn gossip_response(shared: &Shared) -> Json {
    let entries = shared.cache.lock().expect("cache lock").entries_lru();
    ok_response("gossip", None, false, crate::gossip::gossip_body(&entries))
}

fn stats_response(shared: &Shared) -> Json {
    let cache = shared.cache.lock().expect("cache lock");
    let queue_depth = shared.queue.lock().expect("queue lock").len();
    // Integer percent: the wire JSON has no floats.
    let lookups = cache.hits + cache.misses;
    let hit_rate_pct = (cache.hits * 100)
        .checked_div(lookups)
        .and_then(|p| usize::try_from(p).ok())
        .unwrap_or(0);
    let body = Json::Obj(vec![
        ("hits".into(), Json::count(usize::try_from(cache.hits).unwrap_or(usize::MAX))),
        (
            "misses".into(),
            Json::count(usize::try_from(cache.misses).unwrap_or(usize::MAX)),
        ),
        (
            "evictions".into(),
            Json::count(usize::try_from(cache.evictions).unwrap_or(usize::MAX)),
        ),
        ("hit_rate_pct".into(), Json::count(hit_rate_pct)),
        ("entries".into(), Json::count(cache.len())),
        ("cache_bytes".into(), Json::count(cache.used_bytes())),
        ("cache_bytes_max".into(), Json::count(cache.max_bytes())),
        (
            "inflight".into(),
            Json::count(shared.inflight.load(Ordering::SeqCst)),
        ),
        ("queue_depth".into(), Json::count(queue_depth)),
        (
            "executions".into(),
            Json::count(usize::try_from(shared.executions.load(Ordering::SeqCst)).unwrap_or(0)),
        ),
        (
            "rejected".into(),
            Json::count(usize::try_from(shared.rejected.load(Ordering::SeqCst)).unwrap_or(0)),
        ),
        (
            "collapsed".into(),
            Json::count(usize::try_from(shared.collapsed.load(Ordering::SeqCst)).unwrap_or(0)),
        ),
        (
            "states_quotiented".into(),
            Json::count(usize::try_from(shared.quotiented.load(Ordering::SeqCst)).unwrap_or(0)),
        ),
        (
            "por_pruned".into(),
            Json::count(usize::try_from(shared.pruned.load(Ordering::SeqCst)).unwrap_or(0)),
        ),
        ("latency".into(), shared.latency.to_json()),
        ("workers".into(), Json::count(shared.opts.workers)),
        (
            "draining".into(),
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
    ]);
    ok_response("stats", None, false, body)
}

/// Serves a cached `(op, body)` pair as a `cached:true` envelope.
fn cached_reply(op: &str, digest: &str, body: &str) -> String {
    match Json::parse(body) {
        Ok(parsed) => ok_response(op, Some(digest), true, parsed).render_compact(),
        // A cache body that fails to re-parse is a bug; answer it as an
        // error rather than emitting a malformed line.
        Err(e) => error_response(op, &format!("corrupt cache entry: {e}")).render_compact(),
    }
}

fn handle_job(shared: &Arc<Shared>, job: JobRequest) -> String {
    let op = job.mode.keyword();
    let digest = match job.digest() {
        Ok(d) => d,
        Err(e) => return error_response(op, &e).render_compact(),
    };
    if !job.no_cache {
        if let Some((_, body)) = shared.cache.lock().expect("cache lock").get(&digest) {
            return cached_reply(op, &digest, &body);
        }
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        return rejected_response(op, "server is draining").render_compact();
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        let depth = queue.len();
        if !shared
            .admission
            .lock()
            .expect("admission lock")
            .admit_state(depth)
        {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            return rejected_response(op, &format!("queue full ({depth} pending)"))
                .render_compact();
        }
        queue.push_back(Ticket {
            digest,
            job,
            reply: tx,
        });
        shared.queue_cv.notify_one();
    }
    match rx.recv() {
        Ok(response) => response,
        // A drain between enqueue and pickup is a retryable condition,
        // not a request fault: a routing coordinator must try another
        // node rather than surface a half-served answer.
        Err(_) => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            rejected_response(op, "the server dropped the request while draining").render_compact()
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let ticket = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(t) = queue.pop_front() {
                    break t;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock");
            }
        };
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let response = execute(shared, &ticket);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        // A dropped receiver (client gone) is fine; the work still
        // landed in the cache for the next asker.
        let _ = ticket.reply.send(response);
    }
}

/// Accumulates the reduction counters a fresh verify body reports into
/// the server-wide `stats` totals.
fn record_reduction(shared: &Shared, body: &Json) {
    let Some(r) = body.get("reduction") else {
        return;
    };
    let add = |key: &str, ctr: &AtomicU64| {
        if let Some(n) = r.get(key).and_then(Json::as_int) {
            ctr.fetch_add(u64::try_from(n).unwrap_or(0), Ordering::SeqCst);
        }
    };
    add("states_quotiented", &shared.quotiented);
    add("por_pruned", &shared.pruned);
}

fn execute(shared: &Arc<Shared>, ticket: &Ticket) -> String {
    let op = ticket.job.mode.keyword();
    let ctl = RunControl {
        deadline: ticket
            .job
            .timeout_secs
            .or(shared.opts.default_timeout_secs)
            .map(|s| Instant::now() + Duration::from_secs(s)),
        cancel: Arc::clone(&shared.cancel),
    };
    if ticket.job.no_cache {
        // Cache-bypassing requests neither join nor lead a flight: the
        // caller explicitly asked for a private run.
        shared.executions.fetch_add(1, Ordering::SeqCst);
        let outcome = shared.engine.run(&ticket.job, &ctl);
        if let Some(r) = drain_truncated_reply(shared, op, &outcome) {
            return r;
        }
        return match outcome.body {
            Ok(body) => {
                record_reduction(shared, &body);
                ok_response(op, Some(&ticket.digest), false, body).render_compact()
            }
            Err(e) => error_response(op, &e).render_compact(),
        };
    }
    loop {
        // The cache may have been filled between enqueue and pickup (a
        // duplicate ticket whose leader already finished) — serve that
        // rather than re-exploring.
        if let Some((_, body)) = shared
            .cache
            .lock()
            .expect("cache lock")
            .get(&ticket.digest)
        {
            return cached_reply(op, &ticket.digest, &body);
        }
        if shared.flight.begin(&ticket.digest) {
            shared.executions.fetch_add(1, Ordering::SeqCst);
            let outcome = shared.engine.run(&ticket.job, &ctl);
            if let Some(r) = drain_truncated_reply(shared, op, &outcome) {
                shared.flight.finish(&ticket.digest);
                return r;
            }
            let response = match outcome.body {
                Ok(body) => {
                    record_reduction(shared, &body);
                    if outcome.cacheable {
                        shared.cache.lock().expect("cache lock").insert(
                            ticket.digest.clone(),
                            op.to_string(),
                            body.render_compact(),
                        );
                        // Eager persistence: even an abrupt kill keeps
                        // every completed result.
                        persist_snapshot(shared);
                    }
                    ok_response(op, Some(&ticket.digest), false, body).render_compact()
                }
                Err(e) => error_response(op, &e).render_compact(),
            };
            shared.flight.finish(&ticket.digest);
            return response;
        }
        // Someone else is computing this digest: park, then loop — the
        // re-probe serves from the cache they filled, or this worker
        // becomes the next leader if they failed without caching.
        shared.collapsed.fetch_add(1, Ordering::SeqCst);
        shared.flight.wait(&ticket.digest);
    }
}

/// Converts a drain-truncated, non-cacheable run into a `rejected`
/// reply.  A relaying coordinator must see *retry elsewhere*, never a
/// half-explored inconclusive verdict it would pass back to the client
/// as if it were the real answer — that would break the byte-identity
/// guarantee the chaos oracle enforces.
fn drain_truncated_reply(shared: &Shared, op: &str, outcome: &EngineOutcome) -> Option<String> {
    if !outcome.cacheable && shared.draining.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        return Some(rejected_response(op, "worker drained mid-run").render_compact());
    }
    None
}
