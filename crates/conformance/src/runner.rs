//! The conformance run loop: generate, check, shrink, record.

use std::fmt;
use std::path::PathBuf;

use crate::corpus::write_reproducer;
use crate::gen::{generate, GenSize};
use crate::oracle::{builtin_oracles, Oracle, OracleEnv, Verdict};
use crate::shrink::shrink_failure;

/// Configuration of one conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceOptions {
    /// The run seed: together with a case index it determines a case.
    pub seed: u64,
    /// How many cases to generate.
    pub cases: u64,
    /// Size knobs for generation.
    pub size: GenSize,
    /// Oracle names to run (empty = the whole built-in suite).
    pub oracles: Vec<String>,
    /// Where shrunk reproducers are written (`None` = don't write).
    pub regressions_dir: Option<PathBuf>,
    /// Bounds shared by every oracle.
    pub env: OracleEnv,
}

impl ConformanceOptions {
    /// A run of `cases` cases from `seed` with medium-size generation,
    /// the full oracle suite, and no reproducer directory.
    #[must_use]
    pub fn new(seed: u64, cases: u64) -> ConformanceOptions {
        ConformanceOptions {
            seed,
            cases,
            size: GenSize::medium(),
            oracles: Vec::new(),
            regressions_dir: None,
            env: OracleEnv::default(),
        }
    }
}

/// Per-oracle outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleTally {
    /// Cases the oracle ran on (its stride may skip cases).
    pub run: usize,
    /// Cases where the property held.
    pub pass: usize,
    /// Cases out of the oracle's reach.
    pub skip: usize,
    /// Cases where the property failed.
    pub fail: usize,
}

/// One shrunk failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The oracle that failed.
    pub oracle: String,
    /// The failing case's `(seed, index)`.
    pub origin: (u64, u64),
    /// The oracle message on the minimal case.
    pub message: String,
    /// The 1-minimal failing system, printed.
    pub minimal: String,
    /// The minimal fault schedule, if one is needed.
    pub faults: Option<String>,
    /// How many reduction steps shrinking took.
    pub shrink_steps: usize,
    /// Where the reproducer was written, if anywhere.
    pub reproducer: Option<PathBuf>,
}

/// The result of a conformance run.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Cases generated.
    pub cases: u64,
    /// Per-oracle tallies, in suite order.
    pub tallies: Vec<(String, OracleTally)>,
    /// Every failure, shrunk.
    pub failures: Vec<Failure>,
}

impl ConformanceReport {
    /// `true` when every oracle that ran decided at least one case.
    #[must_use]
    pub fn decided_anything(&self) -> bool {
        self.tallies.iter().any(|(_, t)| t.pass + t.fail > 0)
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance: {} cases", self.cases)?;
        for (name, t) in &self.tallies {
            writeln!(
                f,
                "  {name:<10} {} run, {} pass, {} skip, {} fail",
                t.run, t.pass, t.skip, t.fail
            )?;
        }
        for fail in &self.failures {
            writeln!(
                f,
                "FAIL {} (seed {} case {}): {}",
                fail.oracle, fail.origin.0, fail.origin.1, fail.message
            )?;
            writeln!(
                f,
                "  minimal after {} shrink steps: {}",
                fail.shrink_steps, fail.minimal
            )?;
            if let Some(faults) = &fail.faults {
                writeln!(f, "  under faults: {faults}")?;
            }
            if let Some(path) = &fail.reproducer {
                writeln!(f, "  reproducer: {}", path.display())?;
            }
        }
        let total_fail: usize = self.tallies.iter().map(|(_, t)| t.fail).sum();
        write!(
            f,
            "summary: {} failure{}",
            total_fail,
            if total_fail == 1 { "" } else { "s" }
        )
    }
}

/// Runs the conformance harness.
///
/// # Errors
///
/// Returns a usage-style message for unknown oracle names; oracle
/// failures are *results*, not errors.
pub fn run_conformance(opts: &ConformanceOptions) -> Result<ConformanceReport, String> {
    let suite = selected_oracles(&opts.oracles)?;
    let mut tallies: Vec<(String, OracleTally)> = suite
        .iter()
        .map(|o| (o.name().to_string(), OracleTally::default()))
        .collect();
    let mut failures = Vec::new();
    for index in 0..opts.cases {
        let case = generate(opts.seed, index, &opts.size);
        for (oracle, (_, tally)) in suite.iter().zip(&mut tallies) {
            let stride = oracle.stride().max(1) as u64;
            if index % stride != 0 {
                continue;
            }
            tally.run += 1;
            match oracle.check(&case, &opts.env) {
                Verdict::Pass => tally.pass += 1,
                Verdict::Skip(_) => tally.skip += 1,
                Verdict::Fail(_) => {
                    tally.fail += 1;
                    failures.push(record_failure(oracle.as_ref(), &case, opts));
                }
            }
        }
    }
    Ok(ConformanceReport {
        cases: opts.cases,
        tallies,
        failures,
    })
}

fn record_failure(
    oracle: &dyn Oracle,
    case: &crate::gen::TestCase,
    opts: &ConformanceOptions,
) -> Failure {
    let shrunk = shrink_failure(
        oracle,
        &case.spec,
        case.faults.as_ref(),
        &case.channels,
        &opts.env,
    );
    let reproducer = opts.regressions_dir.as_ref().and_then(|dir| {
        write_reproducer(
            dir,
            oracle.name(),
            case.seed,
            case.index,
            &case.channels,
            &shrunk,
            opts.env.injection,
        )
        .ok()
    });
    Failure {
        oracle: oracle.name().to_string(),
        origin: (case.seed, case.index),
        message: shrunk.message.clone(),
        minimal: shrunk.process.to_string(),
        faults: shrunk.faults.as_ref().map(ToString::to_string),
        shrink_steps: shrunk.steps,
        reproducer,
    }
}

fn selected_oracles(names: &[String]) -> Result<Vec<Box<dyn Oracle>>, String> {
    let all = builtin_oracles();
    if names.is_empty() {
        return Ok(all);
    }
    let mut picked = Vec::with_capacity(names.len());
    for name in names {
        let oracle = all.iter().position(|o| o.name() == name).ok_or_else(|| {
            format!(
                "unknown oracle `{name}` (valid: {})",
                crate::oracle::builtin_names().join(", ")
            )
        })?;
        picked.push(oracle);
    }
    // Re-collect in suite order, deduplicated.
    let mut out = Vec::new();
    let mut taken: Vec<usize> = picked;
    taken.sort_unstable();
    taken.dedup();
    for (i, oracle) in all.into_iter().enumerate() {
        if taken.contains(&i) {
            out.push(oracle);
        }
    }
    Ok(out)
}

/// Maps a report to the CLI exit convention: `0` all green, `1` failures
/// found, `3` nothing decided (every oracle skipped everything).
#[must_use]
pub fn exit_code(report: &ConformanceReport) -> i32 {
    if report.failures.is_empty() {
        if report.decided_anything() {
            0
        } else {
            3
        }
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Injection;

    #[test]
    fn unknown_oracle_is_a_usage_error() {
        let mut opts = ConformanceOptions::new(1, 1);
        opts.oracles = vec!["psychic".to_string()];
        let err = run_conformance(&opts).expect_err("should reject");
        assert!(err.contains("unknown oracle `psychic`"), "{err}");
        assert!(err.contains("roundtrip"), "{err}");
    }

    #[test]
    fn small_clean_run_is_green() {
        let mut opts = ConformanceOptions::new(11, 6);
        opts.size = GenSize::small();
        opts.oracles = vec!["roundtrip".to_string(), "cowstate".to_string()];
        let report = run_conformance(&opts).expect("runs");
        assert!(report.failures.is_empty(), "{report}");
        assert_eq!(exit_code(&report), 0);
    }

    #[test]
    fn injected_canonicalizer_bug_is_caught_and_shrunk() {
        let mut opts = ConformanceOptions::new(7, 40);
        opts.size = GenSize::small();
        opts.oracles = vec!["cowstate".to_string()];
        opts.env.injection = Some(Injection::TruncateCanonKeys(2));
        let report = run_conformance(&opts).expect("runs");
        assert!(
            !report.failures.is_empty(),
            "planted bug went uncaught: {report}"
        );
        let smallest = report
            .failures
            .iter()
            .map(|f| f.minimal.lines().count())
            .min()
            .unwrap_or(usize::MAX);
        assert!(
            smallest < 12,
            "expected a reproducer under 12 lines, got {smallest}"
        );
    }

    #[test]
    fn injected_bisim_analysis_bug_is_caught_and_shrunk() {
        let dir = std::env::temp_dir().join(format!(
            "spi-conformance-bisim-regressions-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = ConformanceOptions::new(7, 40);
        opts.size = GenSize::small();
        opts.oracles = vec!["engines".to_string()];
        opts.env.injection = Some(Injection::BisimSkipAnalysis);
        opts.regressions_dir = Some(dir.clone());
        let report = run_conformance(&opts).expect("runs");
        assert!(
            !report.failures.is_empty(),
            "planted bisim bug went uncaught: {report}"
        );
        let smallest = report
            .failures
            .iter()
            .map(|f| f.minimal.lines().count())
            .min()
            .unwrap_or(usize::MAX);
        assert!(
            smallest < 12,
            "expected a reproducer under 12 lines, got {smallest}"
        );
        assert!(
            report.failures.iter().any(|f| f.reproducer.is_some()),
            "no reproducer written: {report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_symmetry_bug_is_caught_and_shrunk() {
        let mut opts = ConformanceOptions::new(7, 40);
        opts.size = GenSize::small();
        opts.oracles = vec!["reduce".to_string()];
        opts.env.injection = Some(Injection::SymNoPerm);
        let report = run_conformance(&opts).expect("runs");
        assert!(
            !report.failures.is_empty(),
            "planted symmetry bug went uncaught: {report}"
        );
        let smallest = report
            .failures
            .iter()
            .map(|f| f.minimal.lines().count())
            .min()
            .unwrap_or(usize::MAX);
        assert!(
            smallest < 12,
            "expected a reproducer under 12 lines, got {smallest}"
        );
    }
}
