//! Relative addresses (Definitions 1 and 2 of the paper) and their algebra.

use std::fmt;
use std::str::FromStr;

use crate::{AddrError, Path};

/// A *relative address* `ϑ₀ • ϑ₁` between two sequential processes
/// (Definition 1 of the paper).
///
/// The address held by an *observer* process `O` and pointing at a
/// *target* process `T` consists of the path `ϑ₀` from their minimal
/// common ancestor down to `O` and the path `ϑ₁` from that ancestor down
/// to `T`.  In Figure 1 of the paper the address of `P3` relative to `P1`
/// is `‖0‖1 • ‖1‖1‖0`.
///
/// The minimality invariant of Definition 1 — when both components are
/// non-empty they start with flipped tags — is enforced by every
/// constructor; [`RelAddr::between`] satisfies it by construction because
/// it strips the longest common prefix of the two absolute positions.
///
/// # Example
///
/// ```
/// use spi_addr::{Path, RelAddr};
///
/// let p1: Path = "01".parse()?;
/// let p3: Path = "110".parse()?;
/// let l = RelAddr::between(&p1, &p3);
/// assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0");
/// // Definition 2: the inverse address is compatible with `l`.
/// assert!(l.is_compatible(&l.inverse()));
/// // Resolving `l` at P1's position recovers P3's position.
/// assert_eq!(l.resolve_at(&p1)?, p3);
/// # Ok::<(), spi_addr::AddrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelAddr {
    observer: Path,
    target: Path,
}

impl RelAddr {
    /// Builds a relative address from its two components, checking the
    /// minimality invariant of Definition 1.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::NotMinimal`] when both components are
    /// non-empty and start with the same tag: the alleged common ancestor
    /// would not be minimal.
    pub fn new(observer: Path, target: Path) -> Result<RelAddr, AddrError> {
        match (observer.first(), target.first()) {
            (Some(a), Some(b)) if a == b => Err(AddrError::NotMinimal { observer, target }),
            _ => Ok(RelAddr { observer, target }),
        }
    }

    /// The identity address `ε•ε`: the address of a process relative to
    /// itself.
    #[must_use]
    pub fn identity() -> RelAddr {
        RelAddr::default()
    }

    /// Computes the address of the process at absolute position `target`
    /// relative to the process at absolute position `observer`, by
    /// stripping their common prefix (the path of the minimal common
    /// ancestor).
    ///
    /// The result always satisfies the Definition 1 invariant.
    #[must_use]
    pub fn between(observer: &Path, target: &Path) -> RelAddr {
        let k = observer.common_prefix_len(target);
        RelAddr {
            observer: observer.suffix_from(k),
            target: target.suffix_from(k),
        }
    }

    /// The component `ϑ₀`: the path from the minimal common ancestor down
    /// to the observer (the process holding the address).
    #[must_use]
    pub fn observer(&self) -> &Path {
        &self.observer
    }

    /// The component `ϑ₁`: the path from the minimal common ancestor down
    /// to the target (the process being pointed at).
    #[must_use]
    pub fn target(&self) -> &Path {
        &self.target
    }

    /// Returns `true` for the identity address `ε•ε`.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.observer.is_empty() && self.target.is_empty()
    }

    /// The inverse address `l⁻¹`, obtained by swapping the two
    /// components: the same path read from the other end.
    ///
    /// The paper writes the address of `P3` w.r.t. `P1` as `l` and the
    /// address of `P1` w.r.t. `P3` as `l⁻¹`.
    #[must_use]
    pub fn inverse(&self) -> RelAddr {
        RelAddr {
            observer: self.target.clone(),
            target: self.observer.clone(),
        }
    }

    /// Definition 2: `other` is *compatible* with `self` when both refer
    /// to the same path with source and target exchanged, i.e.
    /// `other = self⁻¹`.
    #[must_use]
    pub fn is_compatible(&self, other: &RelAddr) -> bool {
        *other == self.inverse()
    }

    /// Resolves the address against the absolute position of its
    /// observer, returning the absolute position of the target.
    ///
    /// This inverts [`RelAddr::between`]:
    /// `RelAddr::between(o, t).resolve_at(o) == t`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::UnresolvableAt`] when the observer component
    /// is not a suffix of `position` — the address cannot have been formed
    /// at that position.
    pub fn resolve_at(&self, position: &Path) -> Result<Path, AddrError> {
        match position.strip_suffix(&self.observer) {
            Some(ancestor) => Ok(ancestor.join(&self.target)),
            None => Err(AddrError::UnresolvableAt {
                position: position.clone(),
                observer: self.observer.clone(),
            }),
        }
    }

    /// The address-composition operation used when a located datum is
    /// forwarded (Section 3.2 of the paper, defined in its reference
    /// \[4\]).
    ///
    /// Let `self` be the tag carried by a datum held by a forwarder `S`,
    /// i.e. the address of the datum's *creator* `C` relative to `S`, and
    /// let `comm` be the address of `S` relative to the *receiver* `R` of
    /// the forwarding communication.  The composition computes the address
    /// of `C` relative to `R` — the updated tag the receiver stores, "so
    /// that the identity of names is maintained".
    ///
    /// Writing `self = s₁•c₁` (paths from an ancestor `A₁` to `S` and `C`)
    /// and `comm = r₂•s₂` (paths from an ancestor `A₂` to `R` and `S`),
    /// the two pivot components `s₁`, `s₂` are suffixes of the absolute
    /// position of `S`, hence one is a suffix of the other; the composite
    /// is obtained by transporting both paths to the higher of the two
    /// ancestors and stripping the common prefix.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::IncoherentComposition`] when neither pivot is
    /// a suffix of the other: the two addresses cannot have been observed
    /// from the same process.
    pub fn compose(&self, comm: &RelAddr) -> Result<RelAddr, AddrError> {
        let s1 = &self.observer; // A₁ → S
        let c1 = &self.target; // A₁ → C
        let r2 = &comm.observer; // A₂ → R
        let s2 = &comm.target; // A₂ → S
        if let Some(t) = s2.strip_suffix(s1) {
            // A₂ is an ancestor of (or equal to) A₁, with A₂ → A₁ = t.
            Ok(RelAddr::between(r2, &t.join(c1)))
        } else if let Some(t) = s1.strip_suffix(s2) {
            // A₁ is a strict ancestor of A₂, with A₁ → A₂ = t.
            Ok(RelAddr::between(&t.join(r2), c1))
        } else {
            Err(AddrError::IncoherentComposition {
                tag_pivot: s1.clone(),
                comm_pivot: s2.clone(),
            })
        }
    }
}

impl fmt::Display for RelAddr {
    /// Renders in the paper's notation: `‖0‖1•‖1‖1‖0`.  Empty components
    /// are left blank, so the identity renders as `•`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.observer.is_empty() {
            write!(f, "{}", self.observer)?;
        }
        write!(f, "\u{2022}")?;
        if !self.target.is_empty() {
            write!(f, "{}", self.target)?;
        }
        Ok(())
    }
}

impl FromStr for RelAddr {
    type Err = AddrError;

    /// Parses the compact form `"<bits>.<bits>"` (a dot separates the two
    /// components, `e` or nothing denotes an empty component), e.g.
    /// `"01.110"` for `‖0‖1•‖1‖1‖0`.  The pretty separator `•` is also
    /// accepted.
    fn from_str(s: &str) -> Result<RelAddr, AddrError> {
        let (obs, tgt) = s
            .split_once('.')
            .or_else(|| s.split_once('\u{2022}'))
            .ok_or(AddrError::MissingSeparator)?;
        RelAddr::new(obs.parse()?, tgt.parse()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path literal")
    }

    fn ra(s: &str) -> RelAddr {
        s.parse().expect("valid address literal")
    }

    #[test]
    fn figure_1_address_of_p3_relative_to_p1() {
        // The paper: "the address of P3 relative to P1 is l = ‖0‖1•‖1‖1‖0".
        let l = RelAddr::between(&p("01"), &p("110"));
        assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0");
        // And its inverse is ‖1‖1‖0•‖0‖1.
        assert_eq!(l.inverse().to_string(), "‖1‖1‖0•‖0‖1");
    }

    #[test]
    fn new_rejects_non_minimal() {
        assert!(matches!(
            RelAddr::new(p("01"), p("00")),
            Err(AddrError::NotMinimal { .. })
        ));
        assert!(RelAddr::new(p("01"), p("10")).is_ok());
        // One-sided empty components are allowed, as in the paper's
        // top-level restrictions (ν •‖0‖0 M).
        assert!(RelAddr::new(Path::root(), p("00")).is_ok());
        assert!(RelAddr::new(p("00"), Path::root()).is_ok());
    }

    #[test]
    fn between_strips_common_prefix() {
        // P2 at ‖1‖0 and P3 at ‖1‖1‖0 meet at the node ‖1.
        let a = RelAddr::between(&p("10"), &p("110"));
        assert_eq!(a.observer(), &p("0"));
        assert_eq!(a.target(), &p("10"));
    }

    #[test]
    fn identity_and_self_address() {
        let a = RelAddr::between(&p("0110"), &p("0110"));
        assert!(a.is_identity());
        assert_eq!(a, RelAddr::identity());
    }

    #[test]
    fn inverse_is_involutive_and_compatible() {
        let l = RelAddr::between(&p("01"), &p("110"));
        assert_eq!(l.inverse().inverse(), l);
        assert!(l.is_compatible(&l.inverse()));
        assert!(!l.is_compatible(&l));
    }

    #[test]
    fn resolve_inverts_between() {
        let o = p("0101");
        let t = p("0110");
        let l = RelAddr::between(&o, &t);
        assert_eq!(l.resolve_at(&o).unwrap(), t);
        assert_eq!(l.inverse().resolve_at(&t).unwrap(), o);
    }

    #[test]
    fn resolve_fails_at_incompatible_position() {
        let l = RelAddr::between(&p("01"), &p("110"));
        assert!(matches!(
            l.resolve_at(&p("10")),
            Err(AddrError::UnresolvableAt { .. })
        ));
    }

    #[test]
    fn composition_matches_the_forwarding_example() {
        // Section 3.2: P3 (at ‖1‖1‖0) creates n and sends it to P1 (at
        // ‖0‖1); P1 forwards it to P2 (at ‖1‖0).  The updated tag must be
        // the address of P3 relative to P2.
        let p1 = p("01");
        let p2 = p("10");
        let p3 = p("110");
        let tag_at_p1 = RelAddr::between(&p1, &p3);
        let comm = RelAddr::between(&p2, &p1);
        let tag_at_p2 = tag_at_p1.compose(&comm).unwrap();
        assert_eq!(tag_at_p2, RelAddr::between(&p2, &p3));
        // In the paper's notation the components are ‖0 (ancestor ‖1 down
        // to P2) and ‖1‖0 (down to P3).
        assert_eq!(tag_at_p2.observer(), &p("0"));
        assert_eq!(tag_at_p2.target(), &p("10"));
    }

    #[test]
    fn composition_coherence_on_a_grid() {
        // compose(between(S,C), between(R,S)) == between(R,C) for all
        // choices of C, S, R among a set of tree positions.
        let positions = [
            p("00"),
            p("01"),
            p("10"),
            p("110"),
            p("111"),
            p("0100"),
            p("0101"),
        ];
        for c in &positions {
            for s in &positions {
                for r in &positions {
                    let tag = RelAddr::between(s, c);
                    let comm = RelAddr::between(r, s);
                    let got = tag.compose(&comm).unwrap();
                    assert_eq!(got, RelAddr::between(r, c), "C={c} S={s} R={r}");
                }
            }
        }
    }

    #[test]
    fn composition_with_identity_tag() {
        // A datum created by the sender itself carries the identity tag;
        // composing transports it to the plain communication address.
        let s = p("00");
        let r = p("1");
        let got = RelAddr::identity()
            .compose(&RelAddr::between(&r, &s))
            .unwrap();
        assert_eq!(got, RelAddr::between(&r, &s));
    }

    #[test]
    fn composition_rejects_incoherent_pivots() {
        // Pivots ‖0‖1 and ‖1‖0: neither is a suffix of the other.
        let tag = RelAddr::new(p("01"), p("10")).unwrap();
        let comm = RelAddr::new(p("01"), p("10")).unwrap();
        assert!(matches!(
            tag.compose(&comm),
            Err(AddrError::IncoherentComposition { .. })
        ));
    }

    #[test]
    fn parse_and_display() {
        let l = ra("01.110");
        assert_eq!(l, RelAddr::between(&p("01"), &p("110")));
        assert_eq!(ra("e.00"), RelAddr::new(Path::root(), p("00")).unwrap());
        assert_eq!(".".parse::<RelAddr>().unwrap(), RelAddr::identity());
        assert_eq!(RelAddr::identity().to_string(), "\u{2022}");
        assert!(matches!(
            "0110".parse::<RelAddr>(),
            Err(AddrError::MissingSeparator)
        ));
        assert!(matches!(
            "00.01".parse::<RelAddr>(),
            Err(AddrError::NotMinimal { .. })
        ));
    }
}
