//! Configurations: the tree of sequential residuals plus the name table.

use std::collections::BTreeSet;
use std::sync::Arc;

use spi_addr::{Path, ProcTree};
use spi_syntax::{Name, Process, Var};

use crate::value::{addr_match_lit, addr_match_terms, match_eq};
use crate::{MachineError, NameTable, RtChanIndex, RtChannel, RtProcess, RtTerm};

/// The state of one sequential component (a leaf of the tree).
///
/// Placement normalizes residuals: restrictions execute (allocating fresh
/// names), matchings and decryptions evaluate (failures leave a
/// [`LeafState::Dead`] leaf), and parallel compositions split into
/// internal nodes — so a live leaf is always an I/O prefix or a
/// replication.  Dead leaves are kept in place: removing them would shift
/// the positions of other components and invalidate captured addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LeafState {
    /// An exhausted or stuck component.
    Dead,
    /// An output prefix ready to send.
    Out {
        /// The (resolved) channel.
        chan: RtChannel,
        /// The payload, stamped with its creator when sent.
        payload: RtTerm,
        /// The continuation.
        cont: RtProcess,
    },
    /// An input prefix ready to receive.
    In {
        /// The (resolved) channel.
        chan: RtChannel,
        /// The variable the payload binds to.
        var: Var,
        /// The continuation.
        cont: RtProcess,
    },
    /// A replication `!P`, unfolded on demand.
    Bang {
        /// The replicated body.
        body: RtProcess,
        /// How many copies this replica has already spawned, checked
        /// against the explorer's unfold bound.
        unfolded: u32,
    },
}

impl LeafState {
    /// Returns `true` for an exhausted or stuck component.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        matches!(self, LeafState::Dead)
    }
}

/// A running configuration: the tree of sequential residuals (Figure 1 of
/// the paper) plus the table recording every name's provenance.
///
/// # Example
///
/// ```
/// use spi_semantics::Config;
/// use spi_syntax::parse;
///
/// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
/// let mut cfg = Config::from_process(&p)?;
/// let actions = cfg.enabled(0);
/// assert_eq!(actions.len(), 1, "one internal communication");
/// cfg.fire(&actions[0])?;
/// // The receiver now offers a barb on the free channel `observe`.
/// assert!(cfg.barbs().iter().any(|b| b.chan == "observe" && b.output));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// The tree and name table live behind [`Arc`]s so cloning a
/// configuration — which explorers do once per candidate successor — is
/// two pointer bumps; the first mutation after a clone copies only the
/// shared component it touches (`Arc::make_mut`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    pub(crate) tree: Arc<ProcTree<LeafState>>,
    pub(crate) names: Arc<NameTable>,
}

/// A barb `P ↓ β` (Section 4.1): the possibility of an input or output on
/// a free channel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Barb {
    /// The channel's (free) name.
    pub chan: Name,
    /// `true` for an output barb `m̄`, `false` for an input barb `m`.
    pub output: bool,
}

impl Config {
    /// Loads a closed process into an initial configuration.
    ///
    /// Free names are interned (they belong to the environment and carry
    /// no creator); restrictions are *not* executed yet — they run when
    /// their component is placed, so each replica of a `(νm)P` gets a
    /// fresh name.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OpenProcess`] when the process has free
    /// variables, and [`MachineError::NotAMessage`] when a located literal
    /// occurs in an output payload.
    pub fn from_process(p: &Process) -> Result<Config, MachineError> {
        let fv = p.free_vars();
        if !fv.is_empty() {
            let vars: Vec<String> = fv.iter().map(ToString::to_string).collect();
            return Err(MachineError::OpenProcess {
                vars: vars.join(", "),
            });
        }
        let mut names = NameTable::new();
        let mut rt = RtProcess::from_static(p);
        for n in p.free_names() {
            let id = names.intern_free(&n);
            rt = rt.subst_sym(&n, id);
        }
        let tree = place(rt, Path::root(), &mut names)?;
        Ok(Config {
            tree: Arc::new(tree),
            names: Arc::new(names),
        })
    }

    /// The tree of sequential residuals.
    #[must_use]
    pub fn tree(&self) -> &ProcTree<LeafState> {
        &self.tree
    }

    /// The name table.
    #[must_use]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Allocates a fresh restricted name on behalf of an environment
    /// process sitting at `creator` — how an explorer models an intruder
    /// inventing a message (`(νM_E)` in the paper's attack on `P1`).
    pub fn alloc_env_name(&mut self, base: &Name, creator: Path) -> crate::NameId {
        Arc::make_mut(&mut self.names).alloc_restricted(base, creator)
    }

    /// The ids of every name (free or restricted) whose base spelling is
    /// `base` — how verifiers locate the restricted channel set `C` after
    /// loading `(νC)(P | X)`.
    #[must_use]
    pub fn ids_named(&self, base: &Name) -> Vec<crate::NameId> {
        self.names
            .iter()
            .filter(|(_, e)| &e.base == base)
            .map(|(id, _)| id)
            .collect()
    }

    /// The barbs the configuration exhibits: one per live I/O prefix whose
    /// subject is a free name.
    #[must_use]
    pub fn barbs(&self) -> BTreeSet<Barb> {
        let mut out = BTreeSet::new();
        for (_, leaf) in self.tree.leaves() {
            let (subject, output) = match leaf {
                LeafState::Out { chan, .. } => (&chan.subject, true),
                LeafState::In { chan, .. } => (&chan.subject, false),
                _ => continue,
            };
            if let RtTerm::Id(id) = subject {
                if self.names.is_free(*id) {
                    out.insert(Barb {
                        chan: self.names.entry(*id).base.clone(),
                        output,
                    });
                }
            }
        }
        out
    }

    /// Returns `true` when no live leaf remains: the configuration is
    /// fully exhausted (replications count as live).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.tree.leaves().all(|(_, l)| l.is_dead())
    }

    /// Renders the configuration for diagnostics: the tree with one
    /// residual per line.
    #[must_use]
    pub fn display(&self) -> String {
        let mut out = String::new();
        for (path, leaf) in self.tree.leaves() {
            let body = match leaf {
                LeafState::Dead => "0".to_owned(),
                LeafState::Out {
                    chan,
                    payload,
                    cont,
                } => format!(
                    "{}<{}>.{}",
                    chan.display(&self.names),
                    payload.display(&self.names),
                    cont.display(&self.names)
                ),
                LeafState::In { chan, var, cont } => {
                    format!(
                        "{}({var}).{}",
                        chan.display(&self.names),
                        cont.display(&self.names)
                    )
                }
                LeafState::Bang { body, unfolded } => {
                    format!("!{} (unfolded {unfolded}x)", body.display(&self.names))
                }
            };
            out.push_str(&format!("{}: {body}\n", path.to_bits()));
        }
        out
    }
}

/// Places a residual at `path`, normalizing it: executes restrictions,
/// evaluates matchings and decryptions, splits parallels.
pub(crate) fn place(
    proc: RtProcess,
    path: Path,
    names: &mut NameTable,
) -> Result<ProcTree<LeafState>, MachineError> {
    match proc {
        RtProcess::Nil => Ok(ProcTree::leaf(LeafState::Dead)),
        RtProcess::Par(l, r) => {
            let left = place(*l, path.child(spi_addr::Branch::Left), names)?;
            let right = place(*r, path.child(spi_addr::Branch::Right), names)?;
            Ok(ProcTree::node(left, right))
        }
        RtProcess::Restrict(n, body) => {
            let id = names.alloc_restricted(&n, path.clone());
            place(body.subst_sym(&n, id), path, names)
        }
        RtProcess::Match(a, b, cont) => {
            if match_eq(&a, &b, &path, names) {
                place(*cont, path, names)
            } else {
                Ok(ProcTree::leaf(LeafState::Dead))
            }
        }
        RtProcess::AddrMatchT(a, b, cont) => {
            if addr_match_terms(&a, &b, names) {
                place(*cont, path, names)
            } else {
                Ok(ProcTree::leaf(LeafState::Dead))
            }
        }
        RtProcess::AddrMatchL(a, l, cont) => {
            if addr_match_lit(&a, &l, &path, names) {
                place(*cont, path, names)
            } else {
                Ok(ProcTree::leaf(LeafState::Dead))
            }
        }
        RtProcess::Case {
            scrutinee,
            binders,
            key,
            body,
        } => {
            let RtTerm::Enc {
                body: parts,
                key: actual_key,
                ..
            } = &scrutinee
            else {
                return Ok(ProcTree::leaf(LeafState::Dead));
            };
            if **actual_key != key || parts.len() != binders.len() {
                return Ok(ProcTree::leaf(LeafState::Dead));
            }
            let mut cont = *body;
            for (x, v) in binders.iter().zip(parts.iter()) {
                cont = cont.subst_var(x, v);
            }
            place(cont, path, names)
        }
        RtProcess::Split {
            pair,
            fst,
            snd,
            body,
        } => {
            let RtTerm::Pair { fst: a, snd: b, .. } = &pair else {
                return Ok(ProcTree::leaf(LeafState::Dead));
            };
            let cont = body.subst_var(&fst, a).subst_var(&snd, b);
            place(cont, path, names)
        }
        RtProcess::Output(chan, payload, cont) => {
            if !payload.is_message() {
                return Err(MachineError::NotAMessage {
                    term: payload.display(names),
                });
            }
            let chan = resolve_channel(chan, &path)?;
            Ok(ProcTree::leaf(LeafState::Out {
                chan,
                payload,
                cont: *cont,
            }))
        }
        RtProcess::Input(chan, var, cont) => {
            let chan = resolve_channel(chan, &path)?;
            Ok(ProcTree::leaf(LeafState::In {
                chan,
                var,
                cont: *cont,
            }))
        }
        RtProcess::Bang(body) => Ok(ProcTree::leaf(LeafState::Bang {
            body: *body,
            unfolded: 0,
        })),
    }
}

/// Resolves a channel's localization at the leaf that owns it: a relative
/// address literal becomes the absolute position of the intended partner.
/// An unresolvable literal yields an index no position satisfies — the
/// prefix can never fire, matching the paper's semantics where a channel
/// localized at a non-existent path is unusable.
fn resolve_channel(ch: RtChannel, path: &Path) -> Result<RtChannel, MachineError> {
    let index = match ch.index {
        RtChanIndex::At(rel) => match rel.resolve_at(path) {
            Ok(abs) => RtChanIndex::AtAbs(abs),
            // Unresolvable: keep a relative index that no partner check
            // will ever satisfy (see `index_allows`).
            Err(_) => RtChanIndex::At(rel),
        },
        other => other,
    };
    Ok(RtChannel {
        subject: ch.subject,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn loading_rejects_open_processes() {
        let open = Process::output(
            spi_syntax::Term::name("c"),
            spi_syntax::Term::var("x"),
            Process::Nil,
        );
        assert!(matches!(
            Config::from_process(&open),
            Err(MachineError::OpenProcess { .. })
        ));
    }

    #[test]
    fn placement_splits_parallels() {
        let c = cfg("c<m> | (d<m> | e<m>)");
        assert_eq!(c.tree.leaf_count(), 3);
        assert!(matches!(
            c.tree.leaf_at(&p("0")).unwrap(),
            LeafState::Out { .. }
        ));
        assert!(matches!(
            c.tree.leaf_at(&p("11")).unwrap(),
            LeafState::Out { .. }
        ));
    }

    #[test]
    fn placement_executes_restrictions_with_creator() {
        let c = cfg("(^m) c<m> | d(x)");
        // The restriction executed at the left leaf ‖0.
        match c.tree.leaf_at(&p("0")).unwrap() {
            LeafState::Out { payload, .. } => match payload {
                RtTerm::Id(id) => {
                    assert!(c.names.entry(*id).restricted);
                    assert_eq!(c.names.creator(*id), Some(&p("0")));
                }
                other => panic!("unexpected payload {other:?}"),
            },
            other => panic!("unexpected leaf {other:?}"),
        }
    }

    #[test]
    fn restriction_scope_spanning_a_parallel_shares_the_name() {
        let c = cfg("(^m)(c<m> | d<m>)");
        let get = |path: &str| match c.tree.leaf_at(&p(path)).unwrap() {
            LeafState::Out { payload, .. } => payload.clone(),
            other => panic!("unexpected leaf {other:?}"),
        };
        assert_eq!(get("0"), get("1"), "both components hold the same name");
        // Its creator is the position where the restriction executed: the
        // root, above the split.
        match get("0") {
            RtTerm::Id(id) => assert_eq!(c.names.creator(id), Some(&Path::root())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_match_leaves_a_dead_leaf() {
        let c = cfg("[m = n] c<m> | d(x)");
        assert!(c.tree.leaf_at(&p("0")).unwrap().is_dead());
        assert!(!c.tree.leaf_at(&p("1")).unwrap().is_dead());
    }

    #[test]
    fn passed_match_continues() {
        let c = cfg("[m = m] c<m>");
        assert!(matches!(*c.tree, ProcTree::Leaf(LeafState::Out { .. })));
    }

    #[test]
    fn failed_decryption_is_stuck() {
        // Wrong key: k vs h.
        let c = cfg("case x of {y}h in c<y>");
        // x is a free name, not a ciphertext: stuck.
        assert!(c.tree.leaf_at(&Path::root()).unwrap().is_dead());
    }

    #[test]
    fn address_match_literal_resolves_at_leaf() {
        // The right component checks that m was created by the process at
        // relative address ‖1•‖0 from it — i.e. at absolute ‖0.
        let c = cfg("(^m) c<m> | [x ~ @(1.0)] d<x>");
        // x is a free name with no origin: the match fails.
        assert!(c.tree.leaf_at(&p("1")).unwrap().is_dead());
    }

    #[test]
    fn barbs_report_free_channels_only() {
        let c = cfg("(^c)(c<m>) | observe<m> | reply(x)");
        let barbs = c.barbs();
        assert_eq!(barbs.len(), 2);
        assert!(barbs.contains(&Barb {
            chan: Name::new("observe"),
            output: true
        }));
        assert!(barbs.contains(&Barb {
            chan: Name::new("reply"),
            output: false
        }));
    }

    #[test]
    fn located_literal_payload_is_rejected() {
        let r = Config::from_process(&parse("c<[0.1]m>").unwrap());
        assert!(matches!(r, Err(MachineError::NotAMessage { .. })));
    }

    #[test]
    fn channel_literals_resolve_to_absolute_positions() {
        // The left component addresses the right one: at ‖0, the literal
        // ‖0•‖1 resolves to absolute ‖1.
        let c = cfg("c@(0.1)<m> | c(x)");
        match c.tree.leaf_at(&p("0")).unwrap() {
            LeafState::Out { chan, .. } => {
                assert_eq!(chan.index, RtChanIndex::AtAbs(p("1")));
            }
            other => panic!("unexpected leaf {other:?}"),
        }
    }

    #[test]
    fn exhausted_detection() {
        assert!(cfg("0").is_exhausted());
        assert!(!cfg("c<m>").is_exhausted());
        assert!(!cfg("!c<m>").is_exhausted());
    }

    #[test]
    fn display_lists_leaves() {
        let c = cfg("(^m) c<m> | d(x)");
        let shown = c.display();
        assert!(shown.contains("0:"));
        assert!(shown.contains("1:"));
        assert!(shown.contains("d(x)"));
    }
}
