//! Hedges: symbolic environment knowledge for the bisimulation engine.
//!
//! A *hedge* (Borgström–Nestmann; Mansutti–Miculan, "Deciding Hedged
//! Bisimilarity") is a finite set of pairs `(M, N)` of messages that the
//! environment cannot tell apart — `M` observed from one run, `N` from
//! the other.  The set is kept closed under **analysis**: a pair of
//! pairs decomposes into its component pairs, and a pair of ciphertexts
//! decomposes into its body pairs once the environment can *synthesize*
//! the key pair.  A hedge is **consistent** when, after analysis, the
//! irreducible pairs form an injective correspondence between the fresh
//! names of the two runs (and free names match by spelling): any
//! violation is an experiment the environment could run to tell the two
//! sides apart.
//!
//! Two views live here:
//!
//! * [`Hedge`] — the general pair set with `analyze`/`synthesizes`/
//!   `consistent`, used directly by property tests (closure idempotence,
//!   termination) and by the conformance oracle's shrunken witnesses;
//! * [`EnvKnowledge`] — the specialization the on-the-fly checker in
//!   [`crate::bisim`] walks with: the hedge pairing one run's raw fresh
//!   names against the *canonical environment names* (trace-local
//!   indices) the tester mints on first extraction.  Rendering an
//!   observation through this hedge factors the pairwise
//!   indistinguishability test of hedged bisimulation through a common
//!   canonical form, which is what lets configurations of many members
//!   share one matching step.
//!
//! Over the observations our explorer exposes (full message structure
//! plus creator stamps), the tester of Definition 4 observes structure
//! even under encryption — matching and address matching apply to every
//! extractable position, and the trace semantics canonicalizes the
//! whole payload.  The analysis rules here therefore decompose both
//! pairs *and* ciphertexts; the planted-bug switch
//! [`EnvKnowledge::with_skipped_analysis`] disables the ciphertext rule
//! so the hedge under-closes, which is exactly the defect the `engines`
//! conformance oracle exists to catch.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{ObsEvent, ObsTerm};

/// A general hedge: irreducible indistinguishable message pairs, kept
/// closed under analysis.
///
/// # Example
///
/// ```
/// use spi_verify::{Hedge, ObsTerm};
/// use spi_syntax::Name;
///
/// let fresh = |nonce| ObsTerm::Fresh { nonce, creator: "00".parse().unwrap() };
/// let mut h = Hedge::new();
/// // A pair of pairs analyzes into its components.
/// let left = ObsTerm::Pair(Box::new(fresh(1)), Box::new(fresh(2)), None);
/// let right = ObsTerm::Pair(Box::new(fresh(7)), Box::new(fresh(8)), None);
/// assert!(h.extend(left, right));
/// assert_eq!(h.len(), 2, "two irreducible name pairs");
/// assert!(h.consistent());
/// // Mapping one name to two different partners is inconsistent.
/// assert!(h.extend(fresh(1), fresh(9)));
/// assert!(!h.consistent());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Hedge {
    /// Irreducible pairs after analysis.
    pairs: BTreeSet<(ObsTerm, ObsTerm)>,
    /// Structure clash seen while analyzing (shape or creator mismatch).
    clash: bool,
    /// Planted-bug switch: skip the ciphertext analysis rule.
    skip_analysis: bool,
}

impl Hedge {
    /// The empty hedge.
    #[must_use]
    pub fn new() -> Hedge {
        Hedge::default()
    }

    /// A hedge with the ciphertext analysis rule disabled — the planted
    /// bug behind the `bisim-skip-analysis` conformance injection.
    /// Ciphertext pairs stay atomic, so the hedge under-closes and the
    /// correspondence it builds is blind to names under encryption.
    #[doc(hidden)]
    #[must_use]
    pub fn with_skipped_analysis() -> Hedge {
        Hedge {
            skip_analysis: true,
            ..Hedge::default()
        }
    }

    /// Number of irreducible pairs currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` when no pair has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Adds a pair and re-closes the hedge under analysis.  Returns
    /// `false` when the pair's structures clash (different shapes,
    /// arities or creator stamps) — a distinguishing experiment in
    /// itself, recorded so [`Hedge::consistent`] answers `false`.
    ///
    /// Analysis terminates: each decomposition step replaces a pair by
    /// strictly smaller subterm pairs, and the saturation loop re-scans
    /// held ciphertext pairs only when a new pair landed.
    pub fn extend(&mut self, left: ObsTerm, right: ObsTerm) -> bool {
        let mut work = vec![(left, right)];
        while let Some((l, r)) = work.pop() {
            if !self.analyze(l, r, &mut work) {
                self.clash = true;
            }
            // Saturate: a ciphertext pair held atomically may become
            // analyzable once its key pair is synthesizable.
            if work.is_empty() && !self.skip_analysis {
                let ready: Vec<(ObsTerm, ObsTerm)> = self
                    .pairs
                    .iter()
                    .filter(|(a, b)| self.enc_analyzable(a, b))
                    .cloned()
                    .collect();
                for pair in ready {
                    self.pairs.remove(&pair);
                    work.push(pair);
                }
            }
        }
        !self.clash
    }

    /// One analysis step: decompose `l`/`r` or store them irreducibly.
    fn analyze(&mut self, l: ObsTerm, r: ObsTerm, work: &mut Vec<(ObsTerm, ObsTerm)>) -> bool {
        match (l, r) {
            (ObsTerm::Pair(a1, b1, c1), ObsTerm::Pair(a2, b2, c2)) => {
                // Projection is always available to the environment.
                work.push((*a1, *a2));
                work.push((*b1, *b2));
                c1 == c2
            }
            (ObsTerm::Enc(b1, k1, c1), ObsTerm::Enc(b2, k2, c2)) => {
                if b1.len() != b2.len() || c1 != c2 {
                    return false;
                }
                let (l, r) = (ObsTerm::Enc(b1, k1, c1), ObsTerm::Enc(b2, k2, c2));
                if self.enc_analyzable(&l, &r) {
                    work.push(decompose_enc(l, r));
                } else {
                    self.pairs.insert((l, r));
                }
                true
            }
            (l, r) => {
                let ok = matches!(
                    (&l, &r),
                    (ObsTerm::Free(a), ObsTerm::Free(b)) if a == b
                ) || matches!((&l, &r), (ObsTerm::Fresh { .. }, ObsTerm::Fresh { .. }));
                self.pairs.insert((l, r));
                ok
            }
        }
    }

    /// Returns `true` when a held ciphertext pair can be analyzed: the
    /// decryption-key pair is synthesizable from the rest of the hedge.
    fn enc_analyzable(&self, l: &ObsTerm, r: &ObsTerm) -> bool {
        if self.skip_analysis {
            return false;
        }
        match (l, r) {
            (ObsTerm::Enc(_, k1, _), ObsTerm::Enc(_, k2, _)) => self.synthesizes(k1, k2),
            _ => false,
        }
    }

    /// Synthesis: can the environment build the pair `(l, r)` from its
    /// knowledge?  Irreducible pairs are lookups; free names are known
    /// by spelling; composites synthesize component-wise (with matching
    /// creator stamps, which address matching observes).
    #[must_use]
    pub fn synthesizes(&self, l: &ObsTerm, r: &ObsTerm) -> bool {
        if self.pairs.contains(&(l.clone(), r.clone())) {
            return true;
        }
        match (l, r) {
            (ObsTerm::Free(a), ObsTerm::Free(b)) => a == b,
            (ObsTerm::Pair(a1, b1, c1), ObsTerm::Pair(a2, b2, c2)) => {
                c1 == c2 && self.synthesizes(a1, a2) && self.synthesizes(b1, b2)
            }
            (ObsTerm::Enc(b1, k1, c1), ObsTerm::Enc(b2, k2, c2)) => {
                b1.len() == b2.len()
                    && c1 == c2
                    && self.synthesizes(k1, k2)
                    && b1.iter().zip(b2).all(|(x, y)| self.synthesizes(x, y))
            }
            _ => false,
        }
    }

    /// Consistency: no structure clash was recorded, every free pair
    /// matches by spelling, fresh pairs pair fresh with fresh, and the
    /// name-level correspondence is injective in both directions.
    #[must_use]
    pub fn consistent(&self) -> bool {
        if self.clash {
            return false;
        }
        let mut fwd: BTreeMap<&ObsTerm, &ObsTerm> = BTreeMap::new();
        let mut bwd: BTreeMap<&ObsTerm, &ObsTerm> = BTreeMap::new();
        for (l, r) in &self.pairs {
            match (l, r) {
                (ObsTerm::Free(a), ObsTerm::Free(b)) if a == b => {}
                (ObsTerm::Fresh { .. }, ObsTerm::Fresh { .. })
                | (ObsTerm::Enc(..), ObsTerm::Enc(..)) => {
                    if *fwd.entry(l).or_insert(r) != r || *bwd.entry(r).or_insert(l) != l {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// The irreducible pairs, for inspection in tests and shrinking.
    pub fn iter(&self) -> impl Iterator<Item = &(ObsTerm, ObsTerm)> {
        self.pairs.iter()
    }
}

/// Rebuilds the worklist entry for an analyzable ciphertext pair: bodies
/// zip up (and the keys, already synthesizable, re-enter as a pair so
/// their correspondence is recorded too).
fn decompose_enc(l: ObsTerm, r: ObsTerm) -> (ObsTerm, ObsTerm) {
    match (l, r) {
        (ObsTerm::Enc(b1, k1, c), ObsTerm::Enc(b2, k2, _)) => (
            b1.into_iter()
                .rev()
                .fold(*k1, |acc, x| ObsTerm::Pair(Box::new(x), Box::new(acc), c.clone())),
            b2.into_iter()
                .rev()
                .fold(*k2, |acc, x| ObsTerm::Pair(Box::new(x), Box::new(acc), c.clone())),
        ),
        _ => unreachable!("only called on ciphertext pairs"),
    }
}

/// The run↔environment hedge the on-the-fly checker carries per
/// configuration member: one run's raw fresh names paired against the
/// canonical indices the environment assigns on first extraction.
///
/// [`EnvKnowledge::observe`] renders an observation in the environment's
/// coordinates; with full analysis the rendering coincides exactly with
/// [`crate::TraceRenamer`] (same strings, byte for byte), which is the
/// bridge between the bisimulation engine's witnesses and the trace
/// engine's canonical traces.  Under the planted
/// `bisim-skip-analysis` bug the hedge cannot look under encryption, so
/// names inside ciphertexts render as the unlinkable placeholder `n?` —
/// the under-closure the `engines` oracle detects.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnvKnowledge {
    /// Raw nonce → canonical environment index, in first-extraction
    /// order (dense: the next index is always `map.len()`).
    map: BTreeMap<u32, usize>,
    /// Planted-bug switch: ciphertexts are opaque to analysis.
    skip_analysis: bool,
}

impl EnvKnowledge {
    /// Fresh knowledge for a new run pair.
    #[must_use]
    pub fn new() -> EnvKnowledge {
        EnvKnowledge::default()
    }

    /// Knowledge with the ciphertext analysis rule disabled (the
    /// `bisim-skip-analysis` planted bug).
    #[doc(hidden)]
    #[must_use]
    pub fn with_skipped_analysis() -> EnvKnowledge {
        EnvKnowledge {
            skip_analysis: true,
            ..EnvKnowledge::default()
        }
    }

    /// Number of fresh names the environment has extracted so far.
    #[must_use]
    pub fn extracted(&self) -> usize {
        self.map.len()
    }

    /// Renders one observation in canonical environment coordinates,
    /// extending the hedge with any newly extracted fresh names.
    pub fn observe(&mut self, ev: &ObsEvent) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}!", ev.chan);
        self.render(&ev.payload, false, &mut out);
        out
    }

    /// Renders one term; `opaque` is set inside a ciphertext the hedge
    /// refused to analyze.
    fn render(&mut self, t: &ObsTerm, opaque: bool, out: &mut String) {
        match t {
            ObsTerm::Free(n) => {
                let _ = write!(out, "f:{n}");
            }
            ObsTerm::Fresh { nonce, creator } => {
                if opaque {
                    // Under an unanalyzed ciphertext the environment
                    // cannot extract the name, so it gets no index and
                    // occurrences cannot be linked.
                    let _ = write!(out, "n?@{}", creator.to_bits());
                } else {
                    let next = self.map.len();
                    let idx = *self.map.entry(*nonce).or_insert(next);
                    let _ = write!(out, "n{idx}@{}", creator.to_bits());
                }
            }
            ObsTerm::Pair(a, b, creator) => {
                out.push('(');
                self.render(a, opaque, out);
                out.push(',');
                self.render(b, opaque, out);
                out.push(')');
                write_creator(creator, out);
            }
            ObsTerm::Enc(body, key, creator) => {
                let inner_opaque = opaque || self.skip_analysis;
                out.push('{');
                for (i, x) in body.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.render(x, inner_opaque, out);
                }
                out.push('}');
                self.render(key, inner_opaque, out);
                write_creator(creator, out);
            }
        }
    }
}

fn write_creator(creator: &Option<spi_addr::Path>, out: &mut String) {
    match creator {
        Some(p) => {
            let _ = write!(out, "#{}", p.to_bits());
        }
        None => out.push_str("#-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRenamer;
    use spi_addr::Path;
    use spi_syntax::Name;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    fn fresh(nonce: u32) -> ObsTerm {
        ObsTerm::Fresh {
            nonce,
            creator: p("00"),
        }
    }

    fn enc(body: Vec<ObsTerm>, key: ObsTerm) -> ObsTerm {
        ObsTerm::Enc(body, Box::new(key), Some(p("00")))
    }

    #[test]
    fn analysis_decomposes_pairs_to_name_pairs() {
        let mut h = Hedge::new();
        let l = ObsTerm::Pair(Box::new(fresh(1)), Box::new(fresh(2)), None);
        let r = ObsTerm::Pair(Box::new(fresh(5)), Box::new(fresh(6)), None);
        assert!(h.extend(l, r));
        assert_eq!(h.len(), 2);
        assert!(h.consistent());
        assert!(h.synthesizes(&fresh(1), &fresh(5)));
        assert!(!h.synthesizes(&fresh(1), &fresh(6)));
    }

    #[test]
    fn ciphertexts_stay_atomic_until_the_key_is_known() {
        let mut h = Hedge::new();
        let ct = |m, k| enc(vec![fresh(m)], fresh(k));
        assert!(h.extend(ct(1, 2), ct(5, 6)));
        assert_eq!(h.len(), 1, "undecryptable ciphertext held atomically");
        assert!(!h.synthesizes(&fresh(1), &fresh(5)), "body not extracted");
        // Learning the key pair saturates the held ciphertext.
        assert!(h.extend(fresh(2), fresh(6)));
        assert!(h.synthesizes(&fresh(1), &fresh(5)), "body extracted");
        assert!(h.consistent());
    }

    #[test]
    fn skipped_analysis_never_opens_ciphertexts() {
        let mut h = Hedge::with_skipped_analysis();
        let ct = |m, k| enc(vec![fresh(m)], fresh(k));
        assert!(h.extend(ct(1, 2), ct(5, 6)));
        assert!(h.extend(fresh(2), fresh(6)));
        assert!(
            !h.synthesizes(&fresh(1), &fresh(5)),
            "the planted bug keeps the ciphertext opaque"
        );
    }

    #[test]
    fn inconsistency_is_a_distinguishing_experiment() {
        let mut h = Hedge::new();
        assert!(h.extend(fresh(1), fresh(5)));
        assert!(h.extend(fresh(1), fresh(6)), "no structural clash");
        assert!(!h.consistent(), "one name with two partners");
        let mut h = Hedge::new();
        assert!(
            !h.extend(ObsTerm::Free(Name::new("a")), fresh(5)),
            "free against fresh clashes"
        );
        assert!(!h.consistent());
    }

    #[test]
    fn env_knowledge_matches_the_trace_renamer_byte_for_byte() {
        let ev = ObsEvent {
            chan: Name::new("c"),
            payload: ObsTerm::Pair(
                Box::new(enc(vec![fresh(3), fresh(4)], ObsTerm::Free(Name::new("k")))),
                Box::new(fresh(3)),
                Some(p("010")),
            ),
        };
        let mut k = EnvKnowledge::new();
        let mut r = TraceRenamer::new();
        assert_eq!(k.observe(&ev), r.canon(&ev));
        // And on a second event, linking included.
        let ev2 = ObsEvent {
            chan: Name::new("d"),
            payload: fresh(4),
        };
        assert_eq!(k.observe(&ev2), r.canon(&ev2));
    }

    #[test]
    fn skipped_analysis_erases_linking_under_encryption() {
        let ct = |m| ObsEvent {
            chan: Name::new("c"),
            payload: enc(vec![fresh(m)], ObsTerm::Free(Name::new("k"))),
        };
        let mut full = EnvKnowledge::new();
        let a = full.observe(&ct(1));
        let b = full.observe(&ct(2));
        assert_ne!(a, b, "full analysis links names under encryption");
        let mut bugged = EnvKnowledge::with_skipped_analysis();
        let a = bugged.observe(&ct(1));
        let b = bugged.observe(&ct(2));
        assert_eq!(a, b, "the under-closed hedge cannot tell them apart");
        assert!(a.contains("n?"), "placeholder rendering: {a}");
    }
}
