//! `spi` — command-line front-end for the authentication-primitives
//! toolkit.
//!
//! ```text
//! spi parse <file>                          check & pretty-print a process
//! spi run <file> [--steps N] [--unfold N]   run a process, narrating steps
//! spi verify <concrete> <abstract>          check secure implementation
//!            [--chan c]... [--sessions N] [--visible N]
//!            [--budget states=N,fuel=N,...] [--fault kind:chan[:max]]...
//!            [--intruder on|off] [--workers N] [--timeout-secs S]
//!            [--reduce none|symmetry|por|full] [--verify-symmetry on|off]
//!            [--engine trace|bisim|both]
//! spi campaign <concrete> <abstract>        sweep every fault schedule up
//!            [--faults-depth K] [--chan c]...  to K unit firings, shrink
//!            [--checkpoint FILE] [--resume FILE]  failures to 1-minimal
//!            [--checkpoint-every N] [--stop-after N]  counterexamples
//!            (plus all verify flags)
//! spi explore <file> [--chan c]... [--sessions N] [--dot out.dot]
//!                                           explore under the intruder
//! spi narrate <narration> [--sessions N]    compile a narration both ways
//!                                           and check the implementation
//! spi conformance [--seed N] [--cases N]    differential conformance
//!            [--size small|medium|large]    fuzzing: generated specs vs
//!            [--oracles a,b,...]            the oracle suite, failures
//!            [--regressions DIR]            shrunk to .spi reproducers
//!            [--inject NAME]                plant a known bug (harness
//!                                           self-test: expect failures)
//! spi paper [--sessions N]                  re-derive the paper's results
//! spi serve [--addr HOST:PORT] [--workers N]  run the verification daemon
//!           [--cache-bytes N] [--snapshot FILE] (newline-delimited JSON
//!           [--queue N] [--timeout-secs S]      over TCP); stdin-close or
//!           [--explore-workers N]               a shutdown request drains
//!           [--read-deadline-ms N]              slowloris reap for partial
//!           [--write-buf-bytes N]               lines, write-buffer cap,
//!           [--quota-rate N] [--quota-burst N]  per-tenant admission quotas
//!           [--join COORD] [--advertise ADDR]   join a fleet: heartbeat the
//!           [--heartbeat-ms N]                  coordinator, gossip-warm on
//!                                               (re)join, hand the cache
//!                                               shard off on drain
//! spi fleet [--addr HOST:PORT] [--quorum N]   run a fleet coordinator that
//!           [--unit-size N] [--hedge-ms N]      shards requests over joined
//!           [--heartbeat-ms N] [--fail-after-ms N]  workers by content
//!           [--retry-rounds N] [--chaos SEED]   digest, splitting campaigns
//!           [--chaos-horizon N] [--explore-workers N]  into work units
//! spi client [--addr HOST:PORT] [REQUEST]...  send request lines (args or
//!            [--connect-timeout MS] [--read-timeout MS]  stdin) and print
//!            [--retries N] [--backoff-ms N]    responses; bare words like
//!            [--fallback local|off]            `ping`/`stats`/`shutdown`
//!            [--progress MS]                   expand to request lines;
//!                                              --progress streams heartbeats
//! ```
//!
//! `--budget` dimensions: `states`, `transitions`, `fuel`, `knowledge`,
//! `steps`.  `--fault` kinds: `drop`, `duplicate`, `reorder`, `replay`
//! (repeatable, and each occurrence may hold several comma-separated
//! clauses; `max` defaults to 1).  `--workers` sets the exploration
//! thread count (default: available parallelism); results are
//! bit-for-bit identical for any worker count.  `--timeout-secs` sets a
//! wall-clock deadline; runs it truncates answer *inconclusive*.
//! `--verify-keys on` makes every exploration intern states by their
//! full canonical strings alongside the hashed keys, panicking on any
//! disagreement.  `--reduce` turns on the session-symmetry quotient
//! and/or partial-order reduction; `--verify-symmetry on` cross-checks
//! the quotient's orbit invariance state by state.  `--engine` picks
//! the decision procedure: the trace engine (default), the on-the-fly
//! hedged-bisimulation engine, or `both` to cross-check them — a
//! disagreement fails loudly with the minimal witness, and `both`
//! campaigns skip the trace comparison on schedules the bisimulation
//! check already rejects.  `spi conformance`
//! oracles: `roundtrip`, `workers`, `hashkeys`, `cowstate`, `reduce`,
//! `checkpoint`, `server`, `fleet`, `engines`.  `spi verify` and
//! `spi campaign` accept `--format text|json`; the JSON shapes are the
//! exact bodies the daemon serves, so scripts see one schema either
//! way.
//!
//! A **fleet** is one `spi fleet` coordinator plus any number of
//! `spi serve --join` workers.  Clients talk to the coordinator with
//! the unchanged single-node protocol; behind it, requests shard over
//! a consistent-hash ring, campaigns split into re-dispatchable work
//! units, failures are detected by heartbeat and dial errors, slow
//! workers are hedged, and on quorum loss the coordinator answers from
//! its own local engine (`"via":"local"` in the envelope).  `--chaos
//! SEED` makes the coordinator drill itself with a deterministic fault
//! plan.  `spi client --fallback local` gives scripts the same
//! degradation: when the server stays unreachable after `--retries`
//! attempts with exponential backoff, the job runs in-process and the
//! response prints as usual.
//!
//! Exit codes: 0 — verified / success; 1 — attack found, failed parse,
//! or conformance failures; 2 — usage error; 3 — inconclusive (a
//! resource budget ran out, the wall clock expired, a campaign was
//! interrupted, or every conformance oracle skipped every case).

use std::process::ExitCode;

use spi_auth::protocols::compile::{compile_abstract, compile_concrete, CompileOptions};
use spi_auth::protocols::narration::Narration;
use spi_auth::semantics::{Config, Narrator, RoleMap};
use spi_auth::syntax::parse;
use spi_auth::{propositions, Budget, FaultClause, FaultSpec, Verdict, Verifier};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "parse" => cmd_parse(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "narrate" => cmd_narrate(&args[1..]),
        "conformance" => cmd_conformance(&args[1..]),
        "paper" => cmd_paper(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try `spi help`")),
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  spi parse <file>\n  spi run <file> [--steps N] [--unfold N]\n  \
         spi verify <concrete> <abstract> [--chan NAME]... [--sessions N] [--visible N]\n    \
         [--budget states=N,transitions=N,fuel=N,knowledge=N,steps=N]\n    \
         [--fault kind:chan[:max],...]... [--intruder on|off] [--workers N] [--timeout-secs S]\n    \
         [--reduce none|symmetry|por|full] [--verify-symmetry on|off] [--verify-keys on|off]\n    \
         [--engine trace|bisim|both]\n  \
         spi campaign <concrete> <abstract> [--faults-depth K] [--checkpoint FILE]\n    \
         [--resume FILE] [--checkpoint-every N] [--stop-after N] (plus verify flags)\n  \
         spi explore <file> [--chan NAME]... [--sessions N] [--dot FILE]\n  \
         spi narrate <narration-file> [--sessions N]\n  \
         spi conformance [--seed N] [--cases N] [--size small|medium|large]\n    \
         [--oracles NAME,...] [--regressions DIR] [--unfold N] [--max-states N]\n    \
         [--inject truncate-keys:N|sym-no-perm|bisim-skip-analysis]\n  \
         spi paper [--sessions N]\n  \
         spi serve [--addr HOST:PORT] [--workers N] [--cache-bytes N] [--snapshot FILE]\n    \
         [--queue N] [--timeout-secs S] [--explore-workers N]\n    \
         [--read-deadline-ms N] [--write-buf-bytes N] [--quota-rate N] [--quota-burst N]\n    \
         [--join COORD] [--advertise ADDR] [--heartbeat-ms N]\n  \
         spi fleet [--addr HOST:PORT] [--quorum N] [--unit-size N] [--hedge-ms N]\n    \
         [--heartbeat-ms N] [--fail-after-ms N] [--retry-rounds N]\n    \
         [--chaos SEED] [--chaos-horizon N] [--explore-workers N]\n  \
         spi client [--addr HOST:PORT] [--connect-timeout MS] [--read-timeout MS]\n    \
         [--retries N] [--backoff-ms N] [--fallback local|off] [--progress MS] [REQUEST]..."
    );
}

/// Positional arguments and `--flag value` pairs, as borrowed slices.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits positional arguments from `--flag value` options.
fn split_flags(args: &[String]) -> Result<SplitArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            pos.push(a.as_str());
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

fn numeric_flag<T: std::str::FromStr>(
    flags: &[(&str, &str)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{name} expects a number, got {v:?}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parses either a bare process or a program file (`def … system …`).
fn parse_any(src: &str) -> Result<spi_auth::syntax::Process, spi_auth::syntax::SyntaxError> {
    if src
        .lines()
        .any(|l| l.trim_start().starts_with("def ") || l.trim_start().starts_with("system"))
    {
        spi_auth::syntax::parse_program(src).map(|prog| prog.system)
    } else {
        parse(src)
    }
}

/// Parses a process source, rendering any error to stderr.  A failed
/// parse is exit code 1 (like `spi parse`), not a usage error.
fn parse_or_fail(src: &str) -> Result<spi_auth::syntax::Process, ExitCode> {
    match parse_any(src) {
        Ok(p) => Ok(p),
        Err(e) => {
            eprintln!("{}", e.render(src));
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_parse(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("parse expects one file".into());
    };
    let src = read(path)?;
    match parse_any(&src) {
        Ok(p) => {
            println!("{p}");
            let free = p.free_names();
            if !free.is_empty() {
                let names: Vec<String> = free.iter().map(ToString::to_string).collect();
                println!("-- free names: {}", names.join(", "));
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{}", e.render(&src));
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("run expects one file".into());
    };
    let steps: usize = numeric_flag(&flags, "steps", 64)?;
    let unfold: u32 = numeric_flag(&flags, "unfold", 2)?;
    let src = read(path)?;
    let Ok(p) = parse_or_fail(&src) else {
        return Ok(ExitCode::FAILURE);
    };
    let mut cfg = Config::from_process(&p).map_err(|e| e.to_string())?;
    let mut narrator = Narrator::new(RoleMap::new());
    for _ in 0..steps {
        let actions = cfg.enabled(unfold);
        let Some(action) = actions.first() else {
            break;
        };
        let info = cfg.fire(action).map_err(|e| e.to_string())?;
        println!("{}", narrator.narrate(&info, &cfg));
    }
    let barbs = cfg.barbs();
    if !barbs.is_empty() {
        let shown: Vec<String> = barbs
            .iter()
            .map(|b| format!("{}{}", b.chan, if b.output { "!" } else { "?" }))
            .collect();
        println!("-- barbs: {}", shown.join(", "));
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the `--budget` value: comma-separated `dimension=count` pairs
/// over the default budget (e.g. `states=5000,fuel=100000`).  The
/// grammar lives in [`Budget::parse_spec`] — the one spelling shared
/// with the `spi serve` wire protocol.
fn parse_budget(spec: &str) -> Result<Budget, String> {
    // parse_spec's messages all start with the word "budget"; prefix
    // the dashes so they read as flag errors here.
    Budget::parse_spec(spec).map_err(|e| format!("--{e}"))
}

fn build_verifier(flags: &[(&str, &str)]) -> Result<Verifier, String> {
    let channels: Vec<&str> = flags
        .iter()
        .filter(|(n, _)| *n == "chan")
        .map(|(_, v)| *v)
        .collect();
    let channels = if channels.is_empty() {
        vec!["c"]
    } else {
        channels
    };
    let mut verifier = Verifier::new(channels.iter().copied())
        .sessions(numeric_flag(flags, "sessions", 2)?)
        .max_visible(numeric_flag(flags, "visible", 6)?)
        .max_states(numeric_flag(flags, "max-states", 200_000)?);
    if let Some(n) = flag(flags, "workers") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("flag --workers expects a number, got {n:?}"))?;
        verifier = verifier.workers(n);
    }
    if let Some(spec) = flag(flags, "budget") {
        verifier = verifier.budget(parse_budget(spec)?);
    }
    // Each --fault may carry several comma-separated clauses, so a whole
    // schedule pastes into one flag: --fault drop:c,replay:c:2
    let raw_clauses: Vec<&str> = flags
        .iter()
        .filter(|(n, _)| *n == "fault")
        .flat_map(|(_, v)| v.split(','))
        .filter(|c| !c.is_empty())
        .collect();
    let total = raw_clauses.len();
    let mut clauses = Vec::with_capacity(total);
    for (i, c) in raw_clauses.iter().enumerate() {
        let clause = c.parse::<FaultClause>().map_err(|e| {
            // The parse error already lists the valid kinds; only append
            // what it cannot know — the channel alphabet.
            let kinds = if e.reason.contains("valid kinds") {
                String::new()
            } else {
                format!("; valid kinds: {}", spi_auth::FaultKind::keywords().join(", "))
            };
            format!(
                "--fault clause {} of {total} (`{c}`): {}{kinds}; channels in C: {}",
                i + 1,
                e.reason,
                channels.join(", ")
            )
        })?;
        if !channels.iter().any(|ch| *ch == clause.chan.as_str()) {
            return Err(format!(
                "--fault clause {} of {total} (`{c}`): channel `{}` is not in C \
                 (channels in C: {}; add --chan {} to include it)",
                i + 1,
                clause.chan,
                channels.join(", "),
                clause.chan
            ));
        }
        clauses.push(clause);
    }
    if !clauses.is_empty() {
        verifier = verifier.faults(FaultSpec::new(clauses));
    }
    match flag(flags, "intruder") {
        None | Some("on") => {}
        Some("off") => verifier = verifier.no_intruder(),
        Some(other) => return Err(format!("--intruder expects on|off, got {other:?}")),
    }
    match flag(flags, "verify-keys") {
        None | Some("off") => {}
        Some("on") => verifier = verifier.verify_keys(true),
        Some(other) => return Err(format!("--verify-keys expects on|off, got {other:?}")),
    }
    if let Some(mode) = flag(flags, "reduce") {
        let reduce = spi_auth::ReduceOptions::parse(mode)
            .ok_or_else(|| format!("--reduce expects none|symmetry|por|full, got {mode:?}"))?;
        verifier = verifier.reduce(reduce);
    }
    if let Some(mode) = flag(flags, "engine") {
        let engine = spi_auth::Engine::parse(mode)
            .ok_or_else(|| format!("--engine expects trace|bisim|both, got {mode:?}"))?;
        verifier = verifier.engine(engine);
    }
    match flag(flags, "verify-symmetry") {
        None | Some("off") => {}
        Some("on") => verifier = verifier.verify_symmetry(true),
        Some(other) => return Err(format!("--verify-symmetry expects on|off, got {other:?}")),
    }
    if let Some(s) = flag(flags, "timeout-secs") {
        let secs: u64 = s
            .parse()
            .map_err(|_| format!("flag --timeout-secs expects a number, got {s:?}"))?;
        verifier = verifier
            .deadline(std::time::Instant::now() + std::time::Duration::from_secs(secs));
    }
    Ok(verifier)
}

/// The exit code a verdict maps to, shared by text and JSON output.
fn verdict_code(verdict: &Verdict) -> ExitCode {
    match verdict {
        Verdict::SecurelyImplements => ExitCode::SUCCESS,
        Verdict::Attack(_) => ExitCode::FAILURE,
        Verdict::Inconclusive { .. } => ExitCode::from(3),
    }
}

fn report_verdict(verdict: &Verdict) -> ExitCode {
    match verdict {
        Verdict::SecurelyImplements => {
            println!("VERDICT: securely implements the specification (within bounds)");
        }
        Verdict::Attack(attack) => {
            println!("VERDICT: ATTACK");
            for line in &attack.narration {
                println!("  {line}");
            }
            println!("  distinguishing trace: {:?}", attack.trace);
        }
        Verdict::Inconclusive {
            exhausted,
            coverage,
        } => {
            println!("VERDICT: INCONCLUSIVE ({exhausted} budget exhausted; covered {coverage})");
        }
    }
    verdict_code(verdict)
}

/// Output format selection.  The JSON shapes are exactly the daemon's
/// response bodies ([`spi_auth::server::verify_body`] /
/// [`spi_auth::server::campaign_body`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn output_format(flags: &[(&str, &str)]) -> Result<Format, String> {
    match flag(flags, "format") {
        None | Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => Err(format!("--format expects text|json, got {other:?}")),
    }
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [concrete_path, abstract_path] = pos.as_slice() else {
        return Err("verify expects <concrete> <abstract>".into());
    };
    let concrete_src = read(concrete_path)?;
    let abstract_src = read(abstract_path)?;
    let (Ok(concrete), Ok(spec)) = (parse_or_fail(&concrete_src), parse_or_fail(&abstract_src))
    else {
        return Ok(ExitCode::FAILURE);
    };
    let verifier = build_verifier(&flags)?;
    let format = output_format(&flags)?;
    let report = verifier
        .check(&concrete, &spec)
        .map_err(|e| e.to_string())?;
    if format == Format::Json {
        println!("{}", spi_auth::server::verify_body(&report).render());
        return Ok(verdict_code(&report.verdict));
    }
    println!(
        "explored {} concrete / {} abstract states",
        report.concrete_stats.states, report.abstract_stats.states
    );
    Ok(report_verdict(&report.verdict))
}

/// A schedule key for humans: the empty schedule spelled out.
fn show_schedule(key: &str) -> &str {
    if key.starts_with('@') {
        "(no faults)"
    } else {
        key
    }
}

fn cmd_campaign(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [concrete_path, abstract_path] = pos.as_slice() else {
        return Err("campaign expects <concrete> <abstract>".into());
    };
    let concrete_src = read(concrete_path)?;
    let abstract_src = read(abstract_path)?;
    let (Ok(concrete), Ok(spec)) = (parse_or_fail(&concrete_src), parse_or_fail(&abstract_src))
    else {
        return Ok(ExitCode::FAILURE);
    };
    let verifier = build_verifier(&flags)?;
    let depth: usize = numeric_flag(&flags, "faults-depth", 2)?;
    let mut opts = verifier.campaign_options(depth);
    opts.checkpoint_every = numeric_flag(&flags, "checkpoint-every", 8)?;
    if let Some(path) = flag(&flags, "checkpoint") {
        opts.checkpoint_path = Some(path.into());
    }
    if let Some(path) = flag(&flags, "resume") {
        opts.checkpoint_path = Some(path.into());
        opts.resume = true;
    }
    if flag(&flags, "stop-after").is_some() {
        opts.stop_after = Some(numeric_flag(&flags, "stop-after", 0)?);
    }
    let format = output_format(&flags)?;
    let report = verifier
        .run_campaign(&concrete, &spec, &opts)
        .map_err(|e| e.to_string())?;
    if format == Format::Json {
        println!("{}", spi_auth::server::campaign_body(&report).render());
        let (attacks, _, inconclusive) = report.tally();
        return Ok(if attacks > 0 {
            ExitCode::FAILURE
        } else if inconclusive > 0 || report.interrupted {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        });
    }

    println!(
        "campaign: {} schedules up to depth {depth} ({} resumed, {} fresh{})",
        report.enumerated,
        report.resumed,
        report.fresh,
        if report.interrupted {
            ", INTERRUPTED"
        } else {
            ""
        }
    );
    let width = report.results.iter().map(|r| r.key.len()).max().unwrap_or(8);
    for r in &report.results {
        match &r.outcome {
            spi_auth::ScheduleOutcome::Attack(cex) => println!(
                "  {:<width$}  ATTACK   minimal {} after {} shrink steps, trace length {}",
                r.key,
                show_schedule(&cex.schedule.canonical_key()),
                cex.shrink_steps,
                cex.trace.len(),
            ),
            spi_auth::ScheduleOutcome::Survives { traces_checked } => println!(
                "  {:<width$}  survives ({traces_checked} traces checked)",
                r.key
            ),
            spi_auth::ScheduleOutcome::Inconclusive { reason } => {
                println!("  {:<width$}  INCONCLUSIVE: {reason}", r.key);
            }
        }
    }
    let (attacks, survives, inconclusive) = report.tally();
    println!("summary: {attacks} attacks, {survives} survive, {inconclusive} inconclusive");
    if report.early_rejects > 0 {
        println!(
            "engine: bisim fast path early-rejected {} classification(s), \
             skipping their trace comparisons",
            report.early_rejects
        );
    }
    if let Some((r, cex)) = report.attacks().next() {
        println!(
            "minimal counterexample (schedule {}, found under {}):",
            show_schedule(&cex.schedule.canonical_key()),
            show_schedule(&r.key),
        );
        for line in verifier
            .narrate_counterexample(&concrete, cex)
            .map_err(|e| e.to_string())?
        {
            println!("  {line}");
        }
        println!("  distinguishing trace: {:?}", cex.trace);
    }
    Ok(if attacks > 0 {
        ExitCode::FAILURE
    } else if inconclusive > 0 || report.interrupted {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_explore(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("explore expects one file".into());
    };
    let src = read(path)?;
    let Ok(p) = parse_or_fail(&src) else {
        return Ok(ExitCode::FAILURE);
    };
    let verifier = build_verifier(&flags)?;
    let lts = verifier.explore(&p).map_err(|e| e.to_string())?;
    println!("{} states, {} edges", lts.stats.states, lts.stats.edges);
    let barbs = lts.weak_barbs();
    if !barbs.is_empty() {
        let shown: Vec<String> = barbs
            .iter()
            .map(|b| format!("{}{}", b.chan, if b.output { "!" } else { "?" }))
            .collect();
        println!("weakly reachable barbs: {}", shown.join(", "));
    }
    if let Some(out) = flag(&flags, "dot") {
        std::fs::write(out, spi_auth::verify::to_dot(&lts))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_narrate(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("narrate expects one narration file".into());
    };
    let sessions: u32 = numeric_flag(&flags, "sessions", 2)?;
    let src = read(path)?;
    let narration = match Narration::parse(&src) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let opts = CompileOptions {
        replicate: sessions > 1,
        ..CompileOptions::default()
    };
    let concrete = compile_concrete(&narration, &opts).map_err(|e| e.to_string())?;
    println!("concrete  = {concrete}");
    let spec = compile_abstract(&narration, &opts).map_err(|e| e.to_string())?;
    println!("abstract  = {spec}");
    let verifier = build_verifier(&flags)?.sessions(sessions);
    let report = verifier
        .check(&concrete, &spec)
        .map_err(|e| e.to_string())?;
    Ok(report_verdict(&report.verdict))
}

fn cmd_conformance(args: &[String]) -> Result<ExitCode, String> {
    use spi_auth::conformance::{self, ConformanceOptions, GenSize, Injection, OracleEnv};
    let (pos, flags) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("conformance takes no positional arguments, got {pos:?}"));
    }
    let mut opts = ConformanceOptions::new(
        numeric_flag(&flags, "seed", 0u64)?,
        numeric_flag(&flags, "cases", 100u64)?,
    );
    if let Some(size) = flag(&flags, "size") {
        opts.size = GenSize::preset(size)?;
    }
    if let Some(names) = flag(&flags, "oracles") {
        opts.oracles = names
            .split(',')
            .filter(|s| !s.is_empty())
            .map(ToString::to_string)
            .collect();
    }
    if let Some(dir) = flag(&flags, "regressions") {
        opts.regressions_dir = Some(dir.into());
    }
    opts.env = OracleEnv {
        unfold_bound: numeric_flag(&flags, "unfold", 1u32)?,
        max_states: numeric_flag(&flags, "max-states", 4_000usize)?,
        // Deliberately planted bugs, for validating the harness itself.
        injection: flag(&flags, "inject").map(Injection::parse).transpose()?,
    };
    let report = conformance::run_conformance(&opts)?;
    println!("{report}");
    Ok(ExitCode::from(
        u8::try_from(conformance::exit_code(&report)).unwrap_or(1),
    ))
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use spi_auth::server::{serve, FullEngine, ServerOptions};
    let (pos, flags) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("serve takes no positional arguments, got {pos:?}"));
    }
    let mut opts = ServerOptions::default();
    if let Some(addr) = flag(&flags, "addr") {
        opts.addr = addr.into();
    }
    opts.workers = numeric_flag(&flags, "workers", opts.workers)?;
    opts.cache_bytes = numeric_flag(&flags, "cache-bytes", opts.cache_bytes)?;
    opts.queue_cap = numeric_flag(&flags, "queue", opts.queue_cap)?;
    if let Some(path) = flag(&flags, "snapshot") {
        opts.snapshot = Some(path.into());
    }
    if flag(&flags, "timeout-secs").is_some() {
        opts.default_timeout_secs = Some(numeric_flag(&flags, "timeout-secs", 0u64)?);
    }
    opts.read_deadline_ms = numeric_flag(&flags, "read-deadline-ms", opts.read_deadline_ms)?;
    opts.write_buf_bytes = numeric_flag(&flags, "write-buf-bytes", opts.write_buf_bytes)?;
    opts.quota_rate = numeric_flag(&flags, "quota-rate", opts.quota_rate)?;
    opts.quota_burst = numeric_flag(&flags, "quota-burst", opts.quota_burst)?;
    // Parallelism comes from the request pool by default; each
    // exploration stays single-threaded unless asked otherwise.
    let explore_workers: usize = numeric_flag(&flags, "explore-workers", 1)?;
    let engine = std::sync::Arc::new(FullEngine::new(Some(explore_workers.max(1))));
    let handle = serve(engine, opts)?;
    println!("spi-serve: listening on {}", handle.addr());
    let heartbeats = flag(&flags, "join")
        .map(|coordinator| -> Result<_, String> {
            let coordinator = coordinator.to_string();
            // What the coordinator should dial back: defaults to the bound
            // address, overridable when that is not reachable from outside
            // (e.g. bound to 0.0.0.0 behind a specific interface).
            let advertise = flag(&flags, "advertise")
                .map(ToString::to_string)
                .unwrap_or_else(|| handle.addr().to_string());
            let every_ms: u64 = numeric_flag(&flags, "heartbeat-ms", 200)?;
            let cache = handle.cache_handle();
            Ok(std::thread::spawn(move || {
                heartbeat_loop(&coordinator, &advertise, every_ms, &cache);
            }))
        })
        .transpose()?;
    // Drain triggers: a `shutdown` request over the wire, or stdin
    // closing (the supervisor-friendly stand-in for SIGTERM — run the
    // daemon with a piped stdin and close it to drain).
    let drainer = handle.shutdown_handle();
    std::thread::spawn(move || {
        use std::io::Read as _;
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        drainer.shutdown();
    });
    handle.join_on_drain();
    // The heartbeat thread's last act is the `leave` announcement that
    // hands the cache shard to the surviving ring owners — wait for it
    // so a supervisor's kill after drain loses no warm entries.
    if let Some(hb) = heartbeats {
        let _ = hb.join();
    }
    eprintln!("spi-serve: drained");
    Ok(ExitCode::SUCCESS)
}

/// Heartbeats the coordinator until the local server drains.  A
/// `rejoined` acknowledgement (first contact, or first contact after
/// the coordinator lost us) triggers a gossip pull from every listed
/// peer, so a restarted worker's first repeated question is already a
/// cache hit.  On drain, the loop's last act is a `leave`
/// announcement carrying this worker's cache entries: the coordinator
/// removes the node from the ring immediately (no failure-detection
/// lag) and pushes each entry to its new ring owner, so draining then
/// killing the process loses no warm cache entry.
fn heartbeat_loop(
    coordinator: &str,
    advertise: &str,
    every_ms: u64,
    cache: &spi_auth::server::CacheHandle,
) {
    use spi_auth::server::{gossip_body, pull_from, Client};
    use spi_auth::verify::jsonlite::Json;
    let connect = std::time::Duration::from_millis(1000);
    let line = format!(r#"{{"op":"join","addr":"{advertise}"}}"#);
    while !cache.draining() {
        let reply = Client::connect_with(coordinator, Some(connect))
            .and_then(|mut c| c.roundtrip(&line));
        if let Ok(reply) = reply {
            let body = Json::parse(&reply).ok().and_then(|v| v.get("body").cloned());
            let rejoined = body
                .as_ref()
                .and_then(|b| b.get("rejoined").and_then(Json::as_bool))
                == Some(true);
            if rejoined {
                let peers: Vec<String> = body
                    .as_ref()
                    .and_then(|b| b.get("peers").and_then(Json::as_arr))
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|p| p.as_str().map(str::to_owned))
                    .collect();
                for peer in peers {
                    match pull_from(&peer, connect, std::time::Duration::from_secs(30)) {
                        Ok(entries) if !entries.is_empty() => {
                            let n = cache.absorb(entries);
                            eprintln!("spi-serve: warmed {n} cache entries from {peer}");
                        }
                        Ok(_) => {}
                        Err(e) => eprintln!("spi-serve: gossip with {peer} failed: {e}"),
                    }
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(every_ms));
    }
    let entries = cache.entries();
    let leave = Json::Obj(vec![
        ("op".to_string(), Json::str("leave")),
        ("addr".to_string(), Json::str(advertise)),
        ("cache".to_string(), gossip_body(&entries)),
    ])
    .render_compact();
    let announced = Client::connect_with(coordinator, Some(connect)).and_then(|mut c| {
        c.read_timeout(Some(std::time::Duration::from_secs(30)))?;
        c.roundtrip(&leave)
    });
    match announced {
        Ok(reply) => {
            let handed = Json::parse(&reply)
                .ok()
                .and_then(|v| v.get("body")?.get("handed_off")?.as_int())
                .unwrap_or(0);
            eprintln!("spi-serve: announced leave, handed off {handed} cache entries");
        }
        Err(e) => eprintln!("spi-serve: leave announcement failed: {e}"),
    }
}

fn cmd_fleet(args: &[String]) -> Result<ExitCode, String> {
    use spi_auth::server::{coordinate, CoordinatorOptions, FullEngine};
    let (pos, flags) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("fleet takes no positional arguments, got {pos:?}"));
    }
    let mut opts = CoordinatorOptions::default();
    if let Some(addr) = flag(&flags, "addr") {
        opts.addr = addr.into();
    }
    opts.quorum = numeric_flag(&flags, "quorum", opts.quorum)?;
    opts.heartbeat_ms = numeric_flag(&flags, "heartbeat-ms", opts.heartbeat_ms)?;
    opts.fail_after_ms = numeric_flag(&flags, "fail-after-ms", opts.fail_after_ms)?;
    opts.unit_size = numeric_flag(&flags, "unit-size", opts.unit_size)?;
    opts.hedge_after_ms = numeric_flag(&flags, "hedge-ms", opts.hedge_after_ms)?;
    opts.connect_timeout_ms = numeric_flag(&flags, "connect-timeout", opts.connect_timeout_ms)?;
    opts.read_timeout_ms = numeric_flag(&flags, "read-timeout", opts.read_timeout_ms)?;
    opts.retry_rounds = numeric_flag(&flags, "retry-rounds", opts.retry_rounds)?;
    if flag(&flags, "chaos").is_some() {
        opts.chaos = Some(numeric_flag(&flags, "chaos", 0u64)?);
    }
    opts.chaos_horizon = numeric_flag(&flags, "chaos-horizon", opts.chaos_horizon)?;
    // The coordinator's own engine only runs under quorum loss (and
    // for stray campaign units no worker would take).
    let explore_workers: usize = numeric_flag(&flags, "explore-workers", 1)?;
    let engine = std::sync::Arc::new(FullEngine::new(Some(explore_workers.max(1))));
    let handle = coordinate(engine, opts)?;
    println!("spi-fleet: coordinating on {}", handle.addr());
    let drainer = handle.shutdown_handle();
    std::thread::spawn(move || {
        use std::io::Read as _;
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        drainer.shutdown();
    });
    handle.join_on_drain();
    eprintln!("spi-fleet: drained");
    Ok(ExitCode::SUCCESS)
}

/// Transport settings for [`cmd_client`]: where to dial, how patiently,
/// and what to do when the server stays unreachable.
struct ClientNet {
    addr: String,
    connect_timeout: Option<std::time::Duration>,
    read_timeout: Option<std::time::Duration>,
    retries: usize,
    backoff_ms: u64,
    fallback_local: bool,
}

/// Sends one request line with reconnect-on-failure and exponential
/// backoff, reusing `cached` (an open connection) across calls.
///
/// `{"status":"progress",…}` heartbeat lines go to `on_progress` as
/// they arrive; the returned line is the final answer.  Because the
/// socket read timeout applies per *line*, a heartbeating server
/// resets `--read-timeout` with every progress event — a long
/// campaign that keeps proving liveness is never mistaken for a dead
/// server, while a silent one still times out promptly.
fn client_send(
    net: &ClientNet,
    cached: &mut Option<spi_auth::server::Client>,
    line: &str,
    on_progress: &mut dyn FnMut(&str),
) -> Result<String, String> {
    use spi_auth::server::Client;
    let mut backoff = std::time::Duration::from_millis(net.backoff_ms.max(1));
    let mut last_err = String::new();
    for attempt in 0..=net.retries {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        if cached.is_none() {
            match Client::connect_with(&net.addr, net.connect_timeout) {
                Ok(mut c) => {
                    if let Err(e) = c.read_timeout(net.read_timeout) {
                        last_err = e;
                        continue;
                    }
                    *cached = Some(c);
                }
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
        }
        match cached
            .as_mut()
            .expect("connected above")
            .roundtrip_streaming(line, &mut *on_progress)
        {
            Ok(response) => return Ok(response),
            Err(e) => {
                // The connection is suspect; reconnect on the retry.
                last_err = e;
                *cached = None;
            }
        }
    }
    Err(last_err)
}

/// Runs a job request on an in-process engine — the client's graceful
/// degradation when the server stays unreachable (`--fallback local`).
/// The response envelope matches the daemon's, marked `"via":"local"`.
fn run_job_locally(line: &str) -> Result<String, String> {
    use spi_auth::server::{
        error_response, ok_response, parse_request, Engine, FullEngine, Request, RunControl,
    };
    use spi_auth::verify::jsonlite::Json;
    let Request::Job(job) = parse_request(line)? else {
        return Err("only verify/campaign/replay requests can fall back to local".into());
    };
    let digest = job.digest()?;
    let op = job.mode.keyword();
    let ctl = RunControl {
        deadline: job
            .timeout_secs
            .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s)),
        cancel: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        progress: None,
    };
    let envelope = match FullEngine::new(Some(1)).run(&job, &ctl).body {
        Ok(body) => {
            let mut env = ok_response(op, Some(&digest), false, body);
            if let Json::Obj(fields) = &mut env {
                fields.push(("via".to_string(), Json::str("local")));
            }
            env
        }
        Err(e) => error_response(op, &e),
    };
    Ok(envelope.render_compact())
}

/// Adds `"progress_ms":MS` to a job request line (verify, campaign,
/// conformance-replay) that does not already carry one.  Control
/// requests and lines that spell their own interval pass through
/// untouched; `progress_ms` is execution-only, so the injection never
/// changes the request's cache digest.
fn inject_progress(line: &str, ms: u64) -> String {
    use spi_auth::verify::jsonlite::Json;
    let Ok(Json::Obj(mut fields)) = Json::parse(line) else {
        return line.to_string();
    };
    let op = fields
        .iter()
        .find(|(k, _)| k == "op")
        .and_then(|(_, v)| v.as_str());
    if !matches!(op, Some("verify" | "campaign" | "conformance-replay"))
        || fields.iter().any(|(k, _)| k == "progress_ms")
    {
        return line.to_string();
    }
    fields.push((
        "progress_ms".to_string(),
        Json::count(usize::try_from(ms).unwrap_or(usize::MAX)),
    ));
    Json::Obj(fields).render_compact()
}

fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    use spi_auth::verify::jsonlite::Json;
    let (pos, flags) = split_flags(args)?;
    let net = ClientNet {
        addr: flag(&flags, "addr").unwrap_or("127.0.0.1:7970").to_string(),
        connect_timeout: Some(std::time::Duration::from_millis(
            numeric_flag(&flags, "connect-timeout", 2000u64)?.max(1),
        )),
        read_timeout: match numeric_flag(&flags, "read-timeout", 0u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        retries: numeric_flag(&flags, "retries", 2usize)?,
        backoff_ms: numeric_flag(&flags, "backoff-ms", 50)?,
        fallback_local: match flag(&flags, "fallback") {
            None | Some("off") => false,
            Some("local") => true,
            Some(other) => return Err(format!("--fallback expects local|off, got {other:?}")),
        },
    };
    // `--progress MS` subscribes job requests to server heartbeats (a
    // `progress_ms` wire field) and prints each one as it streams in.
    let progress_ms = match numeric_flag(&flags, "progress", 0u64)? {
        0 => None,
        ms => Some(ms),
    };
    let mut cached = None;
    let mut all_ok = true;
    let mut send = |line: &str| -> Result<bool, String> {
        // Bare words are request sugar: `spi client stats` asks for
        // `{"op":"stats"}`.
        let line = if line.trim_start().starts_with('{') {
            line.to_string()
        } else {
            format!(r#"{{"op":"{}"}}"#, line.trim())
        };
        let line = match progress_ms {
            Some(ms) => inject_progress(&line, ms),
            None => line,
        };
        // Beats go to stderr: stdout stays one response line per
        // request, so pipelines parsing it never see a heartbeat.
        let mut on_progress = |beat: &str| {
            if progress_ms.is_some() {
                eprintln!("{beat}");
            }
        };
        let response = match client_send(&net, &mut cached, &line, &mut on_progress) {
            Ok(r) => r,
            Err(e) if net.fallback_local => {
                eprintln!("spi-client: {} unreachable ({e}); running locally", net.addr);
                run_job_locally(&line)?
            }
            Err(e) => return Err(format!("cannot reach {}: {e}", net.addr)),
        };
        println!("{response}");
        Ok(Json::parse(&response)
            .ok()
            .and_then(|v| v.get("status").and_then(Json::as_str).map(str::to_owned))
            .is_some_and(|s| s == "ok"))
    };
    if pos.is_empty() {
        use std::io::BufRead as _;
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            all_ok &= send(&line)?;
        }
    } else {
        for line in pos {
            all_ok &= send(line)?;
        }
    }
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_paper(args: &[String]) -> Result<ExitCode, String> {
    let (_, flags) = split_flags(args)?;
    let sessions: u32 = numeric_flag(&flags, "sessions", 2)?;

    let p1 = propositions::proposition_1().map_err(|e| e.to_string())?;
    println!(
        "Proposition 1: {} observations, all from A: {}",
        p1.observations, p1.all_from_a
    );

    match propositions::counterexample_p1().map_err(|e| e.to_string())? {
        Some(a) => {
            println!("P1 ⋢ P:");
            for l in &a.narration {
                println!("  {l}");
            }
        }
        None => println!("P1 ⋢ P: NOT REPRODUCED"),
    }

    let p2 = propositions::proposition_2().map_err(|e| e.to_string())?;
    println!("Proposition 2: {}", propositions::verdict_line(&p2));

    let p3 = propositions::proposition_3(sessions).map_err(|e| e.to_string())?;
    println!(
        "Proposition 3 ({sessions} sessions): all from A: {}, replay: {}",
        p3.all_from_a, p3.replay_found
    );

    match propositions::counterexample_pm2(sessions).map_err(|e| e.to_string())? {
        Some(a) => {
            println!("Pm2 ⋢ Pm (replay):");
            for l in &a.narration {
                println!("  {l}");
            }
        }
        None => println!("Pm2 ⋢ Pm: NOT REPRODUCED"),
    }

    let p4 = propositions::proposition_4(sessions).map_err(|e| e.to_string())?;
    println!("Proposition 4: {}", propositions::verdict_line(&p4));
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn split_flags_separates_positionals() {
        let args = strs(&["a.spi", "--sessions", "3", "b.spi", "--chan", "net"]);
        let (pos, flags) = split_flags(&args).unwrap();
        assert_eq!(pos, vec!["a.spi", "b.spi"]);
        assert_eq!(flags, vec![("sessions", "3"), ("chan", "net")]);
    }

    #[test]
    fn split_flags_rejects_dangling_flags() {
        let err = split_flags(&strs(&["--sessions"])).unwrap_err();
        assert!(err.contains("--sessions"));
    }

    #[test]
    fn numeric_flag_parses_and_defaults() {
        let flags = vec![("sessions", "3")];
        assert_eq!(numeric_flag(&flags, "sessions", 2u32).unwrap(), 3);
        assert_eq!(numeric_flag(&flags, "visible", 6usize).unwrap(), 6);
        assert!(numeric_flag(&flags, "sessions", 2i64).is_ok());
        let bad = vec![("sessions", "many")];
        assert!(numeric_flag(&bad, "sessions", 2u32).is_err());
    }

    #[test]
    fn flag_takes_the_last_occurrence() {
        let flags = vec![("chan", "a"), ("chan", "b")];
        assert_eq!(flag(&flags, "chan"), Some("b"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn unknown_commands_error() {
        assert!(run(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn build_verifier_defaults_to_channel_c() {
        assert!(build_verifier(&[]).is_ok());
    }

    #[test]
    fn budget_flag_parses_dimensions() {
        let b = parse_budget("states=10,fuel=20,steps=30").unwrap();
        assert_eq!(b.max_states, 10);
        assert_eq!(b.max_fuel, 20);
        assert_eq!(b.deadline_steps, 30);
        assert!(parse_budget("states=x").is_err());
        assert!(parse_budget("bogus=1").is_err());
        assert!(parse_budget("states").is_err());
    }

    #[test]
    fn fault_and_intruder_flags_build() {
        assert!(build_verifier(&[("fault", "duplicate:c:1")]).is_ok());
        assert!(build_verifier(&[("fault", "mangle:c")]).is_err());
        assert!(build_verifier(&[("intruder", "off")]).is_ok());
        assert!(build_verifier(&[("intruder", "sometimes")]).is_err());
    }
}
