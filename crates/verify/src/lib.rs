//! Verification toolkit for the spi calculus with authentication
//! primitives.
//!
//! This crate implements Section 4 of *"Authentication Primitives for
//! Protocol Specifications"* (Bodei, Degano, Focardi, Priami, 2003) — the
//! machinery needed to check that a concrete (cryptographic) protocol
//! *securely implements* an abstract, secure-by-construction one:
//!
//! * [`Knowledge`] — a Dolev–Yao knowledge base with analysis (projection,
//!   decryption under known keys) and bounded synthesis;
//! * [`IntruderSpec`] — the most-general bounded intruder of the class
//!   `E_C`: it occupies a fixed tree position, communicates only over the
//!   protocol channels `C`, intercepts anything the localization
//!   discipline lets it receive, and injects anything it can derive;
//! * [`Explorer`] / [`Lts`] — a bounded state-space explorer producing a
//!   labelled transition system whose silent edges are internal steps and
//!   intruder moves, and whose visible edges are the outputs of protocol
//!   *continuations* on free channels (the only thing Definition 4's
//!   testers can see);
//! * [`weak_traces`] / [`trace_preorder`] — may-testing checked as weak
//!   trace inclusion over origin-annotated observations (testers observe
//!   message origins through the address-matching operator, so the
//!   creator position is part of every observation);
//! * [`bisim_preorder`] — the same relation decided by an independent
//!   second engine, an on-the-fly hedged bisimulation over configuration
//!   pairs with symbolic environment knowledge as hedges ([`Hedge`]);
//!   [`Engine`] selects which procedure(s) a run trusts, and `both`
//!   cross-checks them on every verdict;
//! * [`simulates`] — a weak barbed simulation checker, the proof technique
//!   used by the paper for Propositions 2 and 4;
//! * [`may_exhibit`] / [`passes_test`] — the tests `(T, β)` of
//!   Definition 3.
//!
//! The paper's universally quantified attacker (`∀X ∈ E_C`) and tester
//! (`∀T`) are substituted by the bounded most-general intruder plus
//! bounded trace enumeration — the standard finite substitute; bounds are
//! explicit in [`ExploreOptions`] and reported in every verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisim;
mod budget;
pub mod campaign;
mod checkpoint;
mod dot;
mod error;
mod explore;
pub mod faultsim;
mod hedges;
mod iso;
pub mod jsonlite;
mod knowledge;
mod obs;
mod secrecy;
mod simulation;
mod test;
mod testgen;
mod traces;
mod verifier;

pub use bisim::{
    bisim_preorder, bisim_preorder_sound, bisim_preorder_sound_with, bisim_preorder_with,
    bisim_traces, BisimOptions, Engine,
};
pub use budget::{Budget, CoverageStats, Governor, ResourceKind};
pub use hedges::{EnvKnowledge, Hedge};
pub use campaign::{
    run_campaign, CampaignOptions, CampaignReport, MinimalCounterexample, ScheduleOutcome,
    ScheduleResult,
};
pub use dot::to_dot;
pub use error::VerifyError;
pub use explore::{
    ExploreOptions, ExploreStats, Explorer, IntruderSpec, Label, Lts, LtsState, ReduceOptions,
    StepDesc, TauClosures,
};
pub use iso::{Iso, IsoTable};
pub use knowledge::{DeriveCache, Knowledge};
pub use obs::{ObsEvent, ObsTerm, TraceRenamer};
pub use secrecy::{check_secrecy, SecrecyReport};
pub use simulation::{simulates, SimulationResult};
pub use test::{may_exhibit, may_exhibit_bounded, passes_test, TestWitness};
pub use testgen::{definition3_preorder, synthesize_testers, tester_barb, Definition3Outcome};
pub use traces::{
    find_realization, trace_preorder, trace_preorder_sound, weak_traces, TraceSet, TraceVerdict,
};
pub use verifier::{Attack, EquivDirection, Verdict, VerificationReport, Verifier};
