//! A minimal, dependency-free shim exposing the subset of the `rand`
//! 0.8 API this workspace uses (`StdRng`, `SeedableRng`, `Rng` with
//! `gen_bool`/`gen_range`), deterministic for equal seeds.

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

impl_sample_range!(usize, u8, u16, u32, u64);

/// Convenience sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // Compare against the top 53 bits for a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift64* behind a
    /// splitmix64-mixed seed; *not* cryptographic, matching no
    /// particular upstream stream, but stable for equal seeds).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x9e37_79b9 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
            assert_eq!(a.gen_bool(0.5), b.gen_bool(0.5));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
        }
    }
}
