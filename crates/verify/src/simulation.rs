//! Weak barbed simulation — the paper's proof technique for the positive
//! results (Propositions 2 and 4).
//!
//! The paper proves `P₂` secure by exhibiting a *barbed weak simulation*
//! between the cryptographic protocol and the abstract one.  This module
//! checks the analogous property on explored transition systems: every
//! implementation state must be matched by a set of specification states
//! that can weakly mirror its barbs and visible moves.
//!
//! Observations are compared event-locally (each event canonicalized on
//! its own), which is slightly coarser than the trace-level linking used
//! by [`trace_preorder`](crate::trace_preorder); the simulation check is
//! therefore a fast diagnostic and a faithful rendition of the paper's
//! proof style, while the trace check is the verdict-producing procedure.

use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::{Label, Lts, ObsEvent, ResourceKind, TraceRenamer};

/// The outcome of a simulation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationResult {
    /// The specification weakly simulates the implementation.
    Simulates {
        /// The number of game positions examined.
        positions: usize,
    },
    /// A position where the specification cannot match the
    /// implementation.
    Fails {
        /// The stuck implementation state.
        impl_state: usize,
        /// What the specification could not match.
        reason: String,
    },
    /// One of the explorations behind the game was budget-truncated in a
    /// way that makes the raw answer unsound: an apparent simulation over
    /// a truncated implementation, or an apparent failure against a
    /// truncated specification.
    Inconclusive {
        /// The resource whose exhaustion blocked the decision.
        exhausted: ResourceKind,
    },
}

impl SimulationResult {
    /// Returns `true` when the simulation holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, SimulationResult::Simulates { .. })
    }

    /// Returns `true` when the game was decided either way.
    #[must_use]
    pub fn decided(&self) -> bool {
        !matches!(self, SimulationResult::Inconclusive { .. })
    }
}

fn event_key(ev: &ObsEvent) -> String {
    TraceRenamer::new().canon(ev)
}

/// Checks that `specification` weakly simulates `implementation`: from
/// the initial pair, every visible move and every barb of the
/// implementation can be weakly matched by the specification.
///
/// # Example
///
/// ```
/// use spi_verify::{simulates, Explorer, ExploreOptions};
/// use spi_syntax::parse;
///
/// let impl_ = Explorer::new(ExploreOptions::default())
///     .explore(&parse("observe<a>")?)?;
/// let spec = Explorer::new(ExploreOptions::default())
///     .explore(&parse("observe<a> | observe<b>")?)?;
/// assert!(simulates(&spec, &impl_).holds());
/// assert!(!simulates(&impl_, &spec).holds());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn simulates(specification: &Lts, implementation: &Lts) -> SimulationResult {
    let result = play(specification, implementation);
    // Degradation soundness: a simulation over a truncated implementation
    // could still be refuted by the unexplored part; a refutation against
    // a truncated specification could still be matched by it.
    let blame = |lts: &Lts| SimulationResult::Inconclusive {
        exhausted: lts.exhausted.unwrap_or(ResourceKind::Fuel),
    };
    match result {
        SimulationResult::Simulates { .. } if !implementation.complete() => blame(implementation),
        SimulationResult::Fails { .. } if !specification.complete() => blame(specification),
        decided => decided,
    }
}

fn play(specification: &Lts, implementation: &Lts) -> SimulationResult {
    // All spec τ-closures up front: one SCC pass instead of a BFS
    // restart per matched observation.
    let spec_closures = specification.tau_closures();
    // Game positions: (implementation state, τ-closed set of spec states).
    let start = (0usize, spec_closures.of(0).clone());
    let mut seen: HashSet<(usize, Vec<usize>)> = HashSet::new();
    let mut queue: VecDeque<(usize, BTreeSet<usize>)> = VecDeque::new();
    seen.insert((start.0, start.1.iter().copied().collect()));
    queue.push_back(start);
    let mut positions = 0usize;

    while let Some((i, spec_set)) = queue.pop_front() {
        positions += 1;

        // Barb preservation: every (strong) barb of the implementation
        // state must be a weak barb of the matching set.
        let spec_barbs: BTreeSet<_> = spec_set
            .iter()
            .flat_map(|&s| specification.states[s].barbs.iter().cloned())
            .collect();
        for b in &implementation.states[i].barbs {
            if !spec_barbs.contains(b) {
                return SimulationResult::Fails {
                    impl_state: i,
                    reason: format!(
                        "barb {}{} not matched",
                        b.chan,
                        if b.output { "!" } else { "?" }
                    ),
                };
            }
        }

        for (label, tgt) in &implementation.states[i].edges {
            match label {
                Label::Tau(_) => {
                    // The spec set is already τ-closed: match by idling.
                    let key = (*tgt, spec_set.iter().copied().collect::<Vec<_>>());
                    if seen.insert(key) {
                        queue.push_back((*tgt, spec_set.clone()));
                    }
                }
                Label::Obs(ev, _) => {
                    let want = event_key(ev);
                    let mut matched: BTreeSet<usize> = BTreeSet::new();
                    for &s in &spec_set {
                        for (sl, st) in &specification.states[s].edges {
                            if let Label::Obs(sev, _) = sl {
                                if event_key(sev) == want {
                                    matched.extend(spec_closures.of(*st).iter().copied());
                                }
                            }
                        }
                    }
                    if matched.is_empty() {
                        return SimulationResult::Fails {
                            impl_state: i,
                            reason: format!("observation {want} not matched"),
                        };
                    }
                    let key = (*tgt, matched.iter().copied().collect::<Vec<_>>());
                    if seen.insert(key) {
                        queue.push_back((*tgt, matched));
                    }
                }
            }
        }
    }

    SimulationResult::Simulates { positions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExploreOptions, Explorer};
    use spi_syntax::parse;

    fn lts(src: &str) -> Lts {
        Explorer::new(ExploreOptions::default())
            .explore(&parse(src).expect("parses"))
            .expect("explores")
    }

    #[test]
    fn simulation_is_reflexive() {
        for src in ["0", "observe<a>", "(^m)(c<m> | c(x).observe<x>)"] {
            let l = lts(src);
            assert!(simulates(&l, &l).holds(), "{src}");
        }
    }

    #[test]
    fn more_behaviour_simulates_less() {
        let small = lts("observe<a>");
        let big = lts("observe<a>.observe<b> | done<ok>");
        assert!(simulates(&big, &small).holds());
        assert!(!simulates(&small, &big).holds());
    }

    #[test]
    fn barbs_must_be_matched() {
        let impl_ = lts("observe<a>");
        let spec = lts("reply(x)");
        match simulates(&spec, &impl_) {
            SimulationResult::Fails { reason, .. } => {
                assert!(reason.contains("observe"), "{reason}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn weak_matching_crosses_tau_steps() {
        // The spec needs an internal communication before it can observe.
        let impl_ = lts("observe<a>");
        let spec = lts("(^s)(s<go> | s(x).observe<a>)");
        assert!(simulates(&spec, &impl_).holds());
    }

    #[test]
    fn truncated_games_are_inconclusive() {
        use crate::Budget;
        let cut = Explorer::new(ExploreOptions {
            budget: Budget::unlimited().states(1),
            ..ExploreOptions::default()
        })
        .explore(&parse("observe<a>.observe<b>").unwrap())
        .unwrap();
        let full = lts("observe<a>.observe<b>");
        // Truncated implementation: apparent simulation is not sound.
        assert!(!simulates(&full, &cut).decided());
        // Truncated specification: apparent refutation is not sound.
        assert!(!simulates(&cut, &full).decided());
        // Complete sides stay decided.
        assert!(simulates(&full, &full).decided());
    }

    #[test]
    fn origins_are_part_of_observations() {
        // Same shape, different creator positions.
        let left = lts("(^m) observe<m> | 0");
        let right = lts("0 | (^m) observe<m>");
        assert!(!simulates(&left, &right).holds());
        assert!(!simulates(&right, &left).holds());
    }
}
