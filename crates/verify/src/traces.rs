//! Weak traces and may-testing as trace inclusion.
//!
//! The paper's Definition 3 quantifies over all testers; over the
//! observations our explorer exposes (continuation outputs with their
//! full structure, fresh-name linking and origins), the may-testing
//! preorder coincides with inclusion of weak trace sets, so
//! [`trace_preorder`] is the decision procedure behind "P securely
//! implements P′" (Definition 4).

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::iso::IsoTable;
use crate::{Label, Lts, ObsEvent, ResourceKind, TraceRenamer};

/// A set of canonical weak traces; each trace is the sequence of
/// canonicalized observations.  The set contains every prefix of every
/// trace (including the empty one).
pub type TraceSet = BTreeSet<Vec<String>>;

/// Enumerates the weak traces of `lts` up to `max_visible` observations.
///
/// Fresh names are renamed per trace (first occurrence order), so traces
/// of different systems compare by pattern; creator positions are kept
/// verbatim — they are what testers observe through address matching.
///
/// # Example
///
/// ```
/// use spi_verify::{weak_traces, Explorer, ExploreOptions};
/// use spi_syntax::parse;
///
/// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
/// let lts = Explorer::new(ExploreOptions::default()).explore(&p)?;
/// let traces = weak_traces(&lts, 4);
/// assert!(traces.contains(&Vec::new()), "the empty trace is always there");
/// assert!(traces.iter().any(|t| t.len() == 1), "one observation happens");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn weak_traces(lts: &Lts, max_visible: usize) -> TraceSet {
    if !lts.edge_isos.is_empty() {
        return weak_traces_iso(lts, max_visible);
    }
    let mut out = TraceSet::new();
    // All τ-closures up front: one SCC pass instead of one BFS restart
    // per visited subset member.
    let closures = lts.tau_closures();
    let initial: BTreeSet<usize> = closures.of(0).clone();
    let mut prefix = Vec::new();
    collect(
        lts,
        &closures,
        &initial,
        &TraceRenamer::new(),
        max_visible,
        &mut prefix,
        &mut out,
    );
    out
}

fn collect(
    lts: &Lts,
    closures: &crate::TauClosures,
    subset: &BTreeSet<usize>,
    renamer: &TraceRenamer,
    budget: usize,
    prefix: &mut Vec<String>,
    out: &mut TraceSet,
) {
    out.insert(prefix.clone());
    if budget == 0 {
        return;
    }
    // Group visible successors by raw event.
    let mut by_event: Vec<(&ObsEvent, BTreeSet<usize>)> = Vec::new();
    for &s in subset {
        for (label, tgt) in &lts.states[s].edges {
            if let Label::Obs(ev, _) = label {
                match by_event.iter_mut().find(|(e, _)| *e == ev) {
                    Some((_, set)) => {
                        set.extend(closures.of(*tgt).iter().copied());
                    }
                    None => by_event.push((ev, closures.of(*tgt).clone())),
                }
            }
        }
    }
    for (ev, targets) in by_event {
        let mut r = renamer.clone();
        let canon = r.canon(ev);
        prefix.push(canon);
        collect(lts, closures, &targets, &r, budget - 1, prefix, out);
        prefix.pop();
    }
}

/// Iso-annotated traversal state for a reduced LTS.
///
/// When exploration merged states through non-identity isomorphisms, the
/// raw events stored on edges are in the *representative*'s coordinates.
/// Walking the graph therefore carries, per reached state, the composed
/// isomorphism mapping the state's local coordinates back to the true
/// coordinates of the run that reached it; applying it to each observed
/// event reconstructs the exact trace set of the unreduced system.
struct IsoWalk<'l> {
    lts: &'l Lts,
    table: IsoTable,
    /// Per-state τ-closure from the identity: pairs `(t, k)` where `k`
    /// maps `t`'s coordinates into the owning state's coordinates.
    /// Shifting the whole closure by an outer iso is a composition, so
    /// one memoized closure per state serves every visit.
    closure0: Vec<Option<Closure>>,
}

/// A memoized τ-closure: `(state, iso)` pairs reachable silently from
/// one owning state.
type Closure = Arc<Vec<(usize, u32)>>;

impl<'l> IsoWalk<'l> {
    fn new(lts: &'l Lts) -> IsoWalk<'l> {
        IsoWalk {
            lts,
            table: IsoTable::from_isos(lts.isos.clone()),
            closure0: vec![None; lts.states.len()],
        }
    }

    fn edge_iso(&self, state: usize, edge: usize) -> u32 {
        self.lts.edge_isos.get(&(state, edge)).copied().unwrap_or(0)
    }

    fn closure0(&mut self, s: usize) -> Arc<Vec<(usize, u32)>> {
        if let Some(c) = &self.closure0[s] {
            return Arc::clone(c);
        }
        let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
        seen.insert((s, 0));
        let mut work = vec![(s, 0u32)];
        while let Some((v, g)) = work.pop() {
            let lts = self.lts;
            for (e, (label, tgt)) in lts.states[v].edges.iter().enumerate() {
                if matches!(label, Label::Tau(_)) {
                    // The edge iso maps the target's coordinates into
                    // `v`'s; `g` maps `v`'s into `s`'s.
                    let h = self.edge_iso(v, e);
                    let k = self.table.compose_ids(h, g);
                    if seen.insert((*tgt, k)) {
                        work.push((*tgt, k));
                    }
                }
            }
        }
        let arc: Arc<Vec<(usize, u32)>> = Arc::new(seen.into_iter().collect());
        self.closure0[s] = Some(Arc::clone(&arc));
        arc
    }

    /// τ-closure of `s` with every member's iso composed with `g`
    /// (which maps `s`'s coordinates to true coordinates).
    fn closure(&mut self, s: usize, g: u32) -> Vec<(usize, u32)> {
        let base = self.closure0(s);
        base.iter()
            .map(|&(t, k)| (t, self.table.compose_ids(k, g)))
            .collect()
    }
}

fn weak_traces_iso(lts: &Lts, max_visible: usize) -> TraceSet {
    let mut out = TraceSet::new();
    let mut walk = IsoWalk::new(lts);
    let initial: BTreeSet<(usize, u32)> = walk.closure(0, 0).into_iter().collect();
    let mut prefix = Vec::new();
    collect_iso(
        &mut walk,
        &initial,
        &TraceRenamer::new(),
        max_visible,
        &mut prefix,
        &mut out,
    );
    out
}

fn collect_iso(
    walk: &mut IsoWalk<'_>,
    subset: &BTreeSet<(usize, u32)>,
    renamer: &TraceRenamer,
    budget: usize,
    prefix: &mut Vec<String>,
    out: &mut TraceSet,
) {
    out.insert(prefix.clone());
    if budget == 0 {
        return;
    }
    // Group visible successors by the *true* event — the raw edge event
    // pushed through the accumulated iso of its source.
    let mut by_event: Vec<(ObsEvent, BTreeSet<(usize, u32)>)> = Vec::new();
    for &(s, g) in subset {
        let lts = walk.lts;
        for (e, (label, tgt)) in lts.states[s].edges.iter().enumerate() {
            if let Label::Obs(ev, _) = label {
                let true_ev = walk.table.get(g).apply_event(ev);
                let h = walk.edge_iso(s, e);
                let g_tgt = walk.table.compose_ids(h, g);
                let members = walk.closure(*tgt, g_tgt);
                match by_event.iter_mut().find(|(known, _)| *known == true_ev) {
                    Some((_, set)) => set.extend(members),
                    None => by_event.push((true_ev, members.into_iter().collect())),
                }
            }
        }
    }
    for (ev, targets) in by_event {
        let mut r = renamer.clone();
        let canon = r.canon(&ev);
        prefix.push(canon);
        collect_iso(walk, &targets, &r, budget - 1, prefix, out);
        prefix.pop();
    }
}

/// The outcome of a trace-inclusion check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Every implementation trace is a specification trace.
    Holds {
        /// How many implementation traces were checked.
        checked: usize,
    },
    /// A trace of the implementation that the specification cannot
    /// produce — a may-testing counterexample, hence an attack.
    Fails {
        /// The offending canonical trace, shortest first.
        witness: Vec<String>,
    },
    /// The budget ran out before the comparison could be decided either
    /// way (see [`trace_preorder_sound`]).
    Inconclusive {
        /// The resource whose exhaustion blocked the decision.
        exhausted: ResourceKind,
    },
}

impl TraceVerdict {
    /// Returns `true` when the inclusion holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, TraceVerdict::Holds { .. })
    }

    /// Returns `true` when the comparison was decided either way.
    #[must_use]
    pub fn decided(&self) -> bool {
        !matches!(self, TraceVerdict::Inconclusive { .. })
    }
}

/// Checks the may-testing preorder `implementation ⊑ specification` as
/// weak trace inclusion up to `max_visible` observations.
///
/// This is the *raw* bounded comparison over whatever prefixes it is
/// given; it never answers [`TraceVerdict::Inconclusive`].  When either
/// LTS may be a budget-truncated prefix, use [`trace_preorder_sound`],
/// which applies the degradation soundness rule.
#[must_use]
pub fn trace_preorder(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
) -> TraceVerdict {
    let impl_traces = weak_traces(implementation, max_visible);
    let spec_traces = weak_traces(specification, max_visible);
    let mut missing: Vec<&Vec<String>> = impl_traces.difference(&spec_traces).collect();
    // Shortest witness first; among equals prefer the one carrying the
    // most origin annotations — those are the authentication-relevant
    // counterexamples (the paper's attacks inject located fresh names).
    missing.sort_by_key(|t| {
        let origins: usize = t.iter().map(|e| e.matches('@').count()).sum();
        (t.len(), usize::MAX - origins, t.join("\u{1f}"))
    });
    match missing.first() {
        None => TraceVerdict::Holds {
            checked: impl_traces.len(),
        },
        Some(w) => TraceVerdict::Fails {
            witness: (*w).clone(),
        },
    }
}

/// [`trace_preorder`] with the degradation soundness rule applied to
/// possibly-truncated explorations:
///
/// * inclusion observed to **hold** is sound only when the
///   *implementation* side is complete — a truncated specification only
///   makes inclusion harder, so spec truncation cannot fake a `Holds`,
///   but unexplored implementation behaviour could still escape;
/// * a **witness** is sound only when the *specification* side is
///   complete — unexplored specification behaviour could still produce
///   the trace;
/// * anything else is [`TraceVerdict::Inconclusive`], carrying the first
///   exhausted resource of the side that blocked the decision.
#[must_use]
pub fn trace_preorder_sound(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
) -> TraceVerdict {
    let raw = trace_preorder(implementation, specification, max_visible);
    let blame = |lts: &Lts| TraceVerdict::Inconclusive {
        // A truncated LTS always has `exhausted` set; the fallback keeps
        // this total anyway.
        exhausted: lts.exhausted.unwrap_or(ResourceKind::Fuel),
    };
    match raw {
        TraceVerdict::Holds { .. } if !implementation.complete() => blame(implementation),
        TraceVerdict::Fails { .. } if !specification.complete() => blame(specification),
        decided => decided,
    }
}

/// Finds a concrete run of `lts` realizing the canonical `trace`,
/// returning the full edge sequence (silent steps included) for
/// narration.
#[must_use]
pub fn find_realization<'l>(
    lts: &'l Lts,
    trace: &[String],
) -> Option<Vec<(usize, &'l Label, usize)>> {
    if !lts.edge_isos.is_empty() {
        let mut walk = IsoWalk::new(lts);
        let mut path = Vec::new();
        let mut visited = BTreeSet::new();
        return if dfs_iso(
            &mut walk,
            0,
            0,
            trace,
            0,
            &TraceRenamer::new(),
            &mut path,
            &mut visited,
        ) {
            Some(path)
        } else {
            None
        };
    }
    let mut path = Vec::new();
    let mut visited = BTreeSet::new();
    if dfs(
        lts,
        0,
        trace,
        0,
        &TraceRenamer::new(),
        &mut path,
        &mut visited,
    ) {
        Some(path)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_iso<'l>(
    walk: &mut IsoWalk<'l>,
    state: usize,
    g: u32,
    trace: &[String],
    pos: usize,
    renamer: &TraceRenamer,
    path: &mut Vec<(usize, &'l Label, usize)>,
    visited: &mut BTreeSet<(usize, u32, usize)>,
) -> bool {
    if pos == trace.len() {
        return true;
    }
    if !visited.insert((state, g, pos)) {
        return false;
    }
    let lts = walk.lts;
    for (e, (label, tgt)) in lts.states[state].edges.iter().enumerate() {
        match label {
            Label::Tau(_) => {
                let h = walk.edge_iso(state, e);
                let g_tgt = walk.table.compose_ids(h, g);
                path.push((state, label, *tgt));
                if dfs_iso(walk, *tgt, g_tgt, trace, pos, renamer, path, visited) {
                    return true;
                }
                path.pop();
            }
            Label::Obs(ev, _) => {
                let true_ev = walk.table.get(g).apply_event(ev);
                let mut r = renamer.clone();
                if r.canon(&true_ev) == trace[pos] {
                    let h = walk.edge_iso(state, e);
                    let g_tgt = walk.table.compose_ids(h, g);
                    path.push((state, label, *tgt));
                    // Deeper positions may revisit states: clear the
                    // guard for the next segment.
                    let mut fresh_visited = BTreeSet::new();
                    if dfs_iso(
                        walk,
                        *tgt,
                        g_tgt,
                        trace,
                        pos + 1,
                        &r,
                        path,
                        &mut fresh_visited,
                    ) {
                        return true;
                    }
                    path.pop();
                }
            }
        }
    }
    false
}

fn dfs<'l>(
    lts: &'l Lts,
    state: usize,
    trace: &[String],
    pos: usize,
    renamer: &TraceRenamer,
    path: &mut Vec<(usize, &'l Label, usize)>,
    visited: &mut BTreeSet<(usize, usize)>,
) -> bool {
    if pos == trace.len() {
        return true;
    }
    if !visited.insert((state, pos)) {
        return false;
    }
    for (label, tgt) in &lts.states[state].edges {
        match label {
            Label::Tau(_) => {
                path.push((state, label, *tgt));
                if dfs(lts, *tgt, trace, pos, renamer, path, visited) {
                    return true;
                }
                path.pop();
            }
            Label::Obs(ev, _) => {
                let mut r = renamer.clone();
                if r.canon(ev) == trace[pos] {
                    path.push((state, label, *tgt));
                    // Deeper positions may revisit states: clear the
                    // guard for the next segment.
                    let mut fresh_visited = BTreeSet::new();
                    if dfs(lts, *tgt, trace, pos + 1, &r, path, &mut fresh_visited) {
                        return true;
                    }
                    path.pop();
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExploreOptions, Explorer};
    use spi_syntax::parse;

    fn lts(src: &str) -> Lts {
        Explorer::new(ExploreOptions::default())
            .explore(&parse(src).expect("parses"))
            .expect("explores")
    }

    #[test]
    fn traces_include_all_prefixes() {
        let l = lts("observe<a>.observe<b>");
        let t = weak_traces(&l, 4);
        assert!(t.contains(&Vec::new()));
        assert!(t.iter().any(|tr| tr.len() == 1));
        assert!(t.iter().any(|tr| tr.len() == 2));
        assert_eq!(t.len(), 3, "a deterministic two-output system");
    }

    #[test]
    fn trace_canonicalization_forgets_raw_ids() {
        // Two alpha-equivalent systems have identical trace sets.
        let a = lts("(^m) observe<m>");
        let b = lts("(^n) observe<n>");
        assert_eq!(weak_traces(&a, 2), weak_traces(&b, 2));
    }

    #[test]
    fn linking_distinguishes_replays() {
        // Same fresh name twice vs two fresh names.
        let twice = lts("(^m)(observe<m>.observe<m>)");
        let two = lts("(^m)(^n)(observe<m>.observe<n>)");
        assert_ne!(weak_traces(&twice, 3), weak_traces(&two, 3));
        // And inclusion fails in both directions.
        assert!(!trace_preorder(&twice, &two, 3).holds());
        assert!(!trace_preorder(&two, &twice, 3).holds());
    }

    #[test]
    fn origins_distinguish_traces() {
        // The same pattern of outputs, but the name is created by a
        // different component.
        let left = lts("(^m) observe<m> | 0");
        let right = lts("0 | (^m) observe<m>");
        assert_ne!(weak_traces(&left, 2), weak_traces(&right, 2));
    }

    #[test]
    fn preorder_holds_for_subsets() {
        let small = lts("observe<a>");
        let big = lts("observe<a> | observe<b>");
        assert!(trace_preorder(&small, &big, 3).holds());
        assert!(!trace_preorder(&big, &small, 3).holds());
    }

    #[test]
    fn witness_is_shortest_and_realizable() {
        let impl_ = lts("observe<a>.observe<bad>");
        let spec = lts("observe<a>");
        match trace_preorder(&impl_, &spec, 4) {
            TraceVerdict::Fails { witness } => {
                assert_eq!(witness.len(), 2, "shortest counterexample");
                assert!(witness[1].contains("bad"));
                let path = find_realization(&impl_, &witness).expect("realizable");
                // Two visible edges.
                let visible = path
                    .iter()
                    .filter(|(_, l, _)| matches!(l, Label::Obs(_, _)))
                    .count();
                assert_eq!(visible, 2);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn truncated_sides_make_the_preorder_inconclusive() {
        use crate::Budget;
        let truncated = |src: &str| {
            Explorer::new(ExploreOptions {
                budget: Budget::unlimited().states(1),
                ..ExploreOptions::default()
            })
            .explore(&parse(src).expect("parses"))
            .expect("partial")
        };
        let small = lts("observe<a>");
        let big = lts("observe<a> | observe<b>");
        // Complete sides: decided exactly as before.
        assert!(trace_preorder_sound(&small, &big, 3).holds());
        assert!(matches!(
            trace_preorder_sound(&big, &small, 3),
            TraceVerdict::Fails { .. }
        ));
        // Truncated implementation: an apparent Holds is not sound.
        let cut = truncated("observe<a>");
        assert!(!cut.complete());
        assert!(!trace_preorder_sound(&cut, &big, 3).decided());
        // Truncated specification: an apparent witness is not sound.
        let cut_spec = truncated("observe<a>");
        assert!(!trace_preorder_sound(&big, &cut_spec, 3).decided());
        // But a Holds against a truncated spec IS sound (the truncation
        // only removed specification behaviour).
        let empty = lts("0");
        assert!(trace_preorder_sound(&empty, &cut_spec, 3).holds());
    }

    #[test]
    fn nondeterminism_is_covered() {
        // A system that may output either a or b.
        let l = lts("observe<a> | observe<b>");
        let t = weak_traces(&l, 2);
        assert!(t
            .iter()
            .any(|tr| tr.first().is_some_and(|e| e.contains("f:a"))));
        assert!(t
            .iter()
            .any(|tr| tr.first().is_some_and(|e| e.contains("f:b"))));
    }
}
