//! Ablation studies: how the verifier's bounds and strategies trade cost
//! for coverage.
//!
//! * intruder fresh-name budget (0, 1, 2) — does giving the attacker more
//!   invented names blow up the search?
//! * decision procedure — the trace-inclusion check vs. running
//!   Definition 3 directly over synthesized testers;
//! * the reflection study (E9/E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spi_auth::{Verdict, Verifier};
use spi_protocols::{multi, reflection, single};

fn bench_fresh_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("fresh_budget");
    group.sample_size(10);
    let pm2 = multi::shared_key("c", "observe");
    for budget in [0u32, 1, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                let verifier = Verifier::new(["c"]).sessions(2).fresh_budget(budget);
                b.iter(|| verifier.explore(&pm2).expect("explores").stats);
            },
        );
    }
    group.finish();
}

fn bench_decision_procedures(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_procedure");
    group.sample_size(10);
    let verifier = Verifier::new(["c"]);
    let p2 = single::shared_key("c", "observe");
    let p = single::abstract_protocol("c", "observe").expect("builds");
    group.bench_function("trace_inclusion_p2", |b| {
        b.iter(|| {
            let report = verifier.check(&p2, &p).expect("checks");
            assert!(matches!(report.verdict, Verdict::SecurelyImplements));
            report.traces_checked
        });
    });
    group.bench_function("definition3_testers_p2", |b| {
        b.iter(|| {
            let outcome = verifier.check_definition3(&p2, &p).expect("checks");
            assert!(outcome.holds());
            outcome.testers
        });
    });
    group.finish();
}

fn bench_reflection(c: &mut Criterion) {
    let mut group = c.benchmark_group("reflection");
    group.sample_size(10);
    let verifier = Verifier::new(["c"]).sessions(1).max_states(400_000);
    let spec = reflection::bidirectional_abstract("c", "oa", "ob").expect("builds");
    let vulnerable = reflection::bidirectional_challenge_response("c", "oa", "ob");
    let fixed = reflection::bidirectional_tagged("c", "oa", "ob");
    group.bench_function("e9_find_reflection", |b| {
        b.iter(|| {
            let report = verifier.check(&vulnerable, &spec).expect("checks");
            assert!(matches!(report.verdict, Verdict::Attack(_)));
        });
    });
    group.bench_function("e10_verify_repair", |b| {
        b.iter(|| {
            let report = verifier.check(&fixed, &spec).expect("checks");
            assert!(matches!(report.verdict, Verdict::SecurelyImplements));
        });
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_fresh_budget,
    bench_decision_procedures,
    bench_reflection
);
criterion_main!(ablations);
